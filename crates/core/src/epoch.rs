//! The per-thread epoch counter (§5.2.1).
//!
//! Incremented on every release; the new value becomes the
//! release-epoch, guaranteeing that every write preceding the release
//! carries a smaller epoch. The paper provisions 8 bits per line, so the
//! counter wraps; on wrap, every not-yet-persisted line must be flushed
//! before epochs restart (§5.2.1, "Hardware Overhead").

use crate::mech::Epoch;

/// Per-thread epoch counter with configurable wrap limit.
#[derive(Debug, Clone)]
pub struct EpochCounter {
    current: Epoch,
    limit: Epoch,
}

impl EpochCounter {
    /// A counter that wraps after `limit` (the paper's 8-bit metadata
    /// gives 255).
    pub fn new(limit: Epoch) -> Self {
        assert!(limit >= 2, "epoch limit must allow at least one increment");
        EpochCounter { current: 1, limit }
    }

    /// The epoch assigned to new plain writes.
    pub fn current(&self) -> Epoch {
        self.current
    }

    /// The wrap limit.
    pub fn limit(&self) -> Epoch {
        self.limit
    }

    /// Restarts the counter at 1. The caller must have flushed every
    /// line still tagged with an old epoch.
    pub fn reset(&mut self) {
        self.current = 1;
    }

    /// Advances to the next epoch for a release. Returns
    /// `(release_epoch, wrapped)`; when `wrapped` is true the caller must
    /// flush all unpersisted lines and has had the counter restarted.
    pub fn advance(&mut self) -> (Epoch, bool) {
        if self.current == self.limit {
            self.current = 1;
            (1, true)
        } else {
            self.current += 1;
            (self.current, false)
        }
    }
}

impl Default for EpochCounter {
    fn default() -> Self {
        EpochCounter::new(255)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically_until_wrap() {
        let mut c = EpochCounter::new(4);
        assert_eq!(c.current(), 1);
        assert_eq!(c.advance(), (2, false));
        assert_eq!(c.advance(), (3, false));
        assert_eq!(c.advance(), (4, false));
        assert_eq!(c.advance(), (1, true), "wrap flushes and restarts");
        assert_eq!(c.current(), 1);
        assert_eq!(c.advance(), (2, false));
    }

    #[test]
    fn default_matches_paper_metadata_width() {
        let c = EpochCounter::default();
        assert_eq!(c.limit, 255);
    }

    #[test]
    #[should_panic(expected = "epoch limit")]
    fn degenerate_limit_rejected() {
        EpochCounter::new(1);
    }
}
