//! Human-readable run reports (gem5-style stat dumps).

use crate::machine::RunResult;
use crate::stats::{FlushClass, StallCause};
use std::fmt::Write as _;

/// Renders a multi-section text report of one run.
pub fn render(name: &str, r: &RunResult) -> String {
    let s = &r.stats;
    let mut out = String::new();
    let _ = writeln!(out, "==== run report: {name} ====");
    let _ = writeln!(out, "cycles                 {:>12}", s.cycles);
    let _ = writeln!(out, "memory ops replayed    {:>12}", s.ops);
    let _ = writeln!(
        out,
        "ops per kilo-cycle     {:>12.2}",
        if s.cycles == 0 {
            0.0
        } else {
            1000.0 * s.ops as f64 / s.cycles as f64
        }
    );
    let _ = writeln!(out, "-- memory system --");
    let _ = writeln!(
        out,
        "load hits / misses     {:>12} / {}",
        s.load_hits, s.load_misses
    );
    let _ = writeln!(out, "stores performed       {:>12}", s.stores);
    let _ = writeln!(out, "downgrades served      {:>12}", s.downgrades);
    let _ = writeln!(out, "dirty evictions        {:>12}", s.evictions);
    let _ = writeln!(out, "noc messages           {:>12}", s.noc_messages);
    let _ = writeln!(out, "nvm requests           {:>12}", s.nvm_requests);
    let _ = writeln!(out, "-- persistency --");
    let _ = writeln!(out, "flushes total          {:>12}", s.total_flushes());
    for class in FlushClass::ALL {
        let n = s.flushes.get(&class).copied().unwrap_or(0);
        let _ = writeln!(out, "  {:<20} {:>12}", class.name(), n);
    }
    let _ = writeln!(
        out,
        "critical wb fraction   {:>11.1}%",
        100.0 * s.critical_writeback_fraction()
    );
    let _ = writeln!(out, "writes per flush       {:>12.2}", s.coalescing());
    let _ = writeln!(out, "engine runs            {:>12}", s.engine_runs);
    let _ = writeln!(out, "-- stall cycles (summed over cores) --");
    for cause in StallCause::ALL {
        let n = s.stalls.get(&cause).copied().unwrap_or(0);
        let _ = writeln!(out, "  {:<20} {:>12}", cause.name(), n);
    }
    let _ = writeln!(out, "-- persist log --");
    let _ = writeln!(out, "entries                {:>12}", r.persist_log.len());
    if let (Some(first), Some(last)) = (r.persist_log.first(), r.persist_log.last()) {
        let _ = writeln!(
            out,
            "first / last stamp     {:>12} / {}",
            first.stamp, last.stamp
        );
        let _ = writeln!(
            out,
            "first / last cycle     {:>12} / {}",
            first.time, last.time
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mechanism, Sim, SimConfig};
    use lrp_model::litmus::LitmusBuilder;

    #[test]
    fn report_contains_all_sections() {
        let mut b = LitmusBuilder::new(1);
        b.write(0, 0x100, 1);
        b.write_rel(0, 0x140, 2);
        b.read(0, 0x100);
        let t = b.build();
        let r = Sim::new(SimConfig::new(Mechanism::Sb), &t).run();
        let text = render("sb-smoke", &r);
        for needle in [
            "run report: sb-smoke",
            "cycles",
            "-- memory system --",
            "-- persistency --",
            "-- stall cycles",
            "-- persist log --",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_run_reports_zero() {
        let t = lrp_model::Trace::new(1);
        let r = Sim::new(SimConfig::new(Mechanism::Nop), &t).run();
        let text = render("empty", &r);
        assert!(text.contains("entries                           0"));
    }
}
