//! Simulator configuration (Table 1 of the paper).

use lrp_baselines::bb::BbConfig;
use lrp_baselines::{BufferedBarrier, Nop, PersistBuffer, StrictBarrier};
use lrp_core::{Lrp, LrpConfig, PersistMech};

/// Which persistency-enforcement mechanism attaches to the L1s (§6.2's
/// comparison points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Volatile execution (normalization baseline).
    Nop,
    /// Strict full barrier.
    Sb,
    /// Buffered full barrier (state of the art).
    Bb,
    /// Lazy Release Persistency (this paper).
    Lrp,
    /// Persist-buffer (delegated ordering) design — extra comparison
    /// point modeling the other school of §2.2.1.
    Dpo,
}

impl Mechanism {
    /// The paper's four comparison points, in figure order.
    pub const ALL: [Mechanism; 4] = [Mechanism::Nop, Mechanism::Sb, Mechanism::Bb, Mechanism::Lrp];

    /// All mechanisms including the extra persist-buffer point.
    pub const EXTENDED: [Mechanism; 5] = [
        Mechanism::Nop,
        Mechanism::Sb,
        Mechanism::Bb,
        Mechanism::Lrp,
        Mechanism::Dpo,
    ];

    /// Display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Nop => "nop",
            Mechanism::Sb => "sb",
            Mechanism::Bb => "bb",
            Mechanism::Lrp => "lrp",
            Mechanism::Dpo => "dpo",
        }
    }

    /// Parses a figure name back into a mechanism.
    pub fn from_name(name: &str) -> Option<Mechanism> {
        Mechanism::EXTENDED.into_iter().find(|m| m.name() == name)
    }

    /// The persist-ordering discipline this mechanism promises, i.e. the
    /// partial order its crash cuts must be downward closed under. This
    /// is what `lrp-check` verifies the recorded schedules against.
    pub fn discipline(self) -> lrp_core::PersistDiscipline {
        use lrp_core::PersistDiscipline as D;
        match self {
            // NOP persists only on incidental evictions — no promise.
            Mechanism::Nop => D::Unconstrained,
            // Barriers around every release order whole epochs, not the
            // stores inside one: SB flushes the epoch as a blocking
            // batch, BB tracks it lazily — the same promise, differing
            // only in when the pipeline stalls.
            Mechanism::Sb | Mechanism::Bb => D::EpochOrder,
            // The persist buffer drains each thread's stores in order.
            Mechanism::Dpo => D::StoreOrder,
            // LRP enforces exactly the expanded RP rules of §4.1.
            Mechanism::Lrp => D::ReleaseOrder,
        }
    }
}

impl std::str::FromStr for Mechanism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Mechanism::from_name(s)
            .ok_or_else(|| format!("unknown mechanism {s:?} (expected nop|sb|bb|lrp|dpo)"))
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// NVM latency mode (§6.3): `Cached` persists into a battery-backed
/// NVM-side DRAM cache; `Uncached` exposes the raw PCM write latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NvmMode {
    /// 120-cycle persists (Table 1).
    Cached,
    /// 350-cycle persists (Table 1).
    Uncached,
}

impl NvmMode {
    /// Both modes, cached first (the paper's default).
    pub const ALL: [NvmMode; 2] = [NvmMode::Cached, NvmMode::Uncached];

    /// Stable name for reports and flags.
    pub fn name(self) -> &'static str {
        match self {
            NvmMode::Cached => "cached",
            NvmMode::Uncached => "uncached",
        }
    }

    /// Parses a mode name.
    pub fn from_name(name: &str) -> Option<NvmMode> {
        NvmMode::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl std::str::FromStr for NvmMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        NvmMode::from_name(s)
            .ok_or_else(|| format!("unknown NVM mode {s:?} (expected cached|uncached)"))
    }
}

impl std::fmt::Display for NvmMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full machine configuration. Defaults reproduce Table 1.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Persistency mechanism.
    pub mechanism: Mechanism,
    /// NVM mode.
    pub nvm_mode: NvmMode,
    /// L1 data cache size in bytes (Table 1: 32 KB).
    pub l1_bytes: usize,
    /// L1 associativity (8-way).
    pub l1_ways: usize,
    /// L1 hit latency in cycles (2).
    pub l1_latency: u64,
    /// LLC bank access latency in cycles (30).
    pub llc_latency: u64,
    /// Number of LLC banks / directory slices (one per tile).
    pub llc_banks: usize,
    /// Mesh dimension (8×8 for 64 cores).
    pub mesh_dim: usize,
    /// Base router traversal cycles per message.
    pub noc_base: u64,
    /// Cycles per mesh hop.
    pub noc_per_hop: u64,
    /// Extra serialization cycles for messages carrying a 64 B line.
    pub noc_data_extra: u64,
    /// Number of NVM memory controllers.
    pub nvm_ctrls: usize,
    /// NVM service interval (queue bandwidth), cycles per request.
    pub nvm_service: u64,
    /// Override for NVM latency; `None` uses the mode's Table-1 value.
    pub nvm_latency_override: Option<u64>,
    /// Persist-buffer entries per core: flushes concurrently in flight
    /// from one L1 to the NVM controllers.
    pub flush_mshrs: usize,
    /// Store-buffer entries per core.
    pub store_buffer: usize,
    /// Compute cycles charged between consecutive memory ops.
    pub compute_gap: u64,
    /// LRP parameters (RET size/watermark, epoch width, scan cost).
    pub lrp: LrpConfig,
    /// BB parameters (proactive flushing toggle).
    pub bb: BbConfig,
    /// Safety valve: abort if the event loop exceeds this many cycles.
    pub max_cycles: u64,
    /// Debug: eprintln all protocol activity touching this line.
    pub debug_line: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mechanism: Mechanism::Lrp,
            nvm_mode: NvmMode::Cached,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_latency: 2,
            llc_latency: 30,
            llc_banks: 64,
            mesh_dim: 8,
            noc_base: 3,
            noc_per_hop: 2,
            noc_data_extra: 8,
            nvm_ctrls: 4,
            nvm_service: 16,
            nvm_latency_override: None,
            flush_mshrs: 8,
            store_buffer: 16,
            compute_gap: 4,
            lrp: LrpConfig::default(),
            bb: BbConfig::default(),
            max_cycles: 4_000_000_000,
            debug_line: None,
        }
    }
}

impl SimConfig {
    /// A configuration for `mechanism` with Table-1 defaults.
    pub fn new(mechanism: Mechanism) -> Self {
        SimConfig {
            mechanism,
            ..SimConfig::default()
        }
    }

    /// Sets the NVM mode.
    pub fn nvm_mode(mut self, m: NvmMode) -> Self {
        self.nvm_mode = m;
        self
    }

    /// The effective NVM read/persist latency in cycles.
    pub fn nvm_latency(&self) -> u64 {
        self.nvm_latency_override.unwrap_or(match self.nvm_mode {
            NvmMode::Cached => 120,
            NvmMode::Uncached => 350,
        })
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> usize {
        self.l1_bytes / 64 / self.l1_ways
    }

    /// Builds a fresh mechanism instance for one core.
    pub fn build_mech(&self) -> Box<dyn PersistMech> {
        match self.mechanism {
            Mechanism::Nop => Box::new(Nop),
            Mechanism::Sb => Box::new(StrictBarrier::new()),
            Mechanism::Bb => Box::new(BufferedBarrier::new(self.bb.clone())),
            Mechanism::Lrp => Box::new(Lrp::new(self.lrp.clone())),
            Mechanism::Dpo => Box::new(PersistBuffer::new()),
        }
    }

    /// Renders the Table-1 configuration summary.
    pub fn table1(&self) -> String {
        format!(
            "Processor        {}-core (in-order issue, non-blocking stores)\n\
             L1 I+D-Cache     {} KB, {} cycles, {}-way, 64 B lines\n\
             LLC (NUCA)       {} banks, {} cycles, shared\n\
             On-chip network  {}x{} 2D mesh, {}+{}*hops cycles\n\
             Coherence        Directory-based MESI\n\
             NVM (PCM)        cached mode: 120 cycles, uncached mode: 350 cycles ({} ctrls, 1/{} cyc)\n\
             RET (private)    {} entries (watermark {})\n\
             Mechanism        {}",
            self.mesh_dim * self.mesh_dim,
            self.l1_bytes / 1024,
            self.l1_latency,
            self.l1_ways,
            self.llc_banks,
            self.llc_latency,
            self.mesh_dim,
            self.mesh_dim,
            self.noc_base,
            self.noc_per_hop,
            self.nvm_ctrls,
            self.nvm_service,
            self.lrp.ret_capacity,
            self.lrp.ret_watermark,
            self.mechanism,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = SimConfig::default();
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l1_ways, 8);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.llc_latency, 30);
        assert_eq!(c.mesh_dim, 8);
        assert_eq!(c.l1_sets(), 64);
        assert_eq!(c.nvm_latency(), 120);
        assert_eq!(c.nvm_mode(NvmMode::Uncached).nvm_latency(), 350);
    }

    #[test]
    fn override_wins_over_mode() {
        let c = SimConfig {
            nvm_latency_override: Some(42),
            ..SimConfig::default()
        };
        assert_eq!(c.nvm_latency(), 42);
    }

    #[test]
    fn mechanism_factory_builds_each() {
        for m in Mechanism::ALL {
            let mech = SimConfig::new(m).build_mech();
            assert_eq!(mech.name(), m.name());
        }
    }

    #[test]
    fn table1_mentions_key_parameters() {
        let t = SimConfig::default().table1();
        assert!(t.contains("32 KB"));
        assert!(t.contains("MESI"));
        assert!(t.contains("120 cycles"));
        assert!(t.contains("32 entries"));
    }
}
