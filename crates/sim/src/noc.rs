//! 2D-mesh interconnect latency model (Table 1: 8×8 mesh, 32-bit links).
//!
//! Latency-only XY routing: `base + per_hop × manhattan(src, dst)`, plus
//! a serialization term for messages carrying a 64 B line. Contention is
//! not modeled per link — the NVM service queue, not the mesh, is the
//! contended resource in every experiment — but delivery on each
//! (src, dst) channel is FIFO (enforced by the machine, not here).

/// Mesh geometry and timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct Mesh {
    /// Side length (8 for the 64-core machine).
    pub dim: usize,
    /// Router/base traversal cycles.
    pub base: u64,
    /// Cycles per hop.
    pub per_hop: u64,
    /// Serialization cycles for a data (64 B) payload.
    pub data_extra: u64,
}

impl Mesh {
    /// Manhattan hop count between two tiles.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        let (sx, sy) = (src % self.dim, src / self.dim);
        let (dx, dy) = (dst % self.dim, dst / self.dim);
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }

    /// One-way message latency.
    pub fn latency(&self, src: usize, dst: usize, data: bool) -> u64 {
        self.base
            + self.per_hop * self.hops(src, dst) as u64
            + if data { self.data_extra } else { 0 }
    }

    /// The tile hosting NVM controller `n` (the four mesh corners).
    pub fn nvm_tile(&self, n: usize) -> usize {
        let d = self.dim;
        [0, d - 1, d * (d - 1), d * d - 1][n % 4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh {
            dim: 8,
            base: 3,
            per_hop: 2,
            data_extra: 8,
        }
    }

    #[test]
    fn hops_are_manhattan() {
        let m = mesh();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 7), 7); // same row
        assert_eq!(m.hops(0, 56), 7); // same column
        assert_eq!(m.hops(0, 63), 14); // opposite corner
        assert_eq!(m.hops(9, 18), 2); // (1,1) -> (2,2)
        assert_eq!(m.hops(18, 9), 2, "symmetric");
    }

    #[test]
    fn latency_components() {
        let m = mesh();
        assert_eq!(m.latency(0, 0, false), 3);
        assert_eq!(m.latency(0, 1, false), 5);
        assert_eq!(m.latency(0, 1, true), 13);
        assert_eq!(m.latency(0, 63, false), 3 + 2 * 14);
    }

    #[test]
    fn nvm_controllers_sit_at_corners() {
        let m = mesh();
        assert_eq!(m.nvm_tile(0), 0);
        assert_eq!(m.nvm_tile(1), 7);
        assert_eq!(m.nvm_tile(2), 56);
        assert_eq!(m.nvm_tile(3), 63);
        assert_eq!(m.nvm_tile(4), 0, "wraps modulo 4");
    }

    #[test]
    fn latency_is_symmetric() {
        let m = mesh();
        for (a, b) in [(0, 63), (5, 40), (17, 17)] {
            assert_eq!(m.latency(a, b, true), m.latency(b, a, true));
        }
    }
}
