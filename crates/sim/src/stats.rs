//! Run statistics: execution time, stall breakdown, and the write-back
//! classification behind Figure 6.

/// Why a core was stalled (cycles accumulate per cause).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Waiting for a load miss.
    LoadMiss,
    /// Waiting for the store buffer to drain (RMW serialization or a
    /// full buffer).
    StoreDrain,
    /// Waiting for a mechanism flush (`flush_before`).
    MechFlush,
    /// Waiting for an RMW-acquire / strict-barrier persist ack
    /// (`persist_line_after`).
    PersistAck,
    /// Waiting for a reads-from producer on another core to perform.
    RfWait,
}

/// Why a flush was issued (write-back classification for Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushClass {
    /// The issuing core stalls for it: store `flush_before`, eviction
    /// `flush_before` (I1), RMW persists, RET-full drains. These are the
    /// paper's "write-backs in the critical path".
    Critical,
    /// Proactive or watermark-triggered background flushes.
    Background,
    /// Triggered by a coherence downgrade — the *requestor* waits but
    /// the write-back's own core does not (§6.4 measures criticality at
    /// the processor doing the write-back).
    Sync,
    /// Directory-side write-back persists (invariant I4) and volatile
    /// LLC write-backs.
    Directory,
}

/// Aggregate statistics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Cycle at which the last core retired its last operation.
    pub cycles: u64,
    /// Memory operations replayed.
    pub ops: u64,
    /// L1 load hits / misses.
    pub load_hits: u64,
    /// L1 load misses.
    pub load_misses: u64,
    /// Stores performed.
    pub stores: u64,
    /// Coherence downgrades (Fwd-GetS/GetM) served by L1s.
    pub downgrades: u64,
    /// L1 dirty evictions.
    pub evictions: u64,
    /// NVM line flushes by class.
    pub flushes: std::collections::HashMap<FlushClass, u64>,
    /// Total writes covered by all flushes (for coalescing ratios).
    pub covered_writes: u64,
    /// Stall cycles by cause, summed over cores.
    pub stalls: std::collections::HashMap<StallCause, u64>,
    /// Messages injected into the NoC.
    pub noc_messages: u64,
    /// NVM requests served (reads + persists).
    pub nvm_requests: u64,
    /// Engine runs executed (jobs with at least one flush).
    pub engine_runs: u64,
}

impl Stats {
    /// Records a flush of `covered` writes with the given class.
    pub fn record_flush(&mut self, class: FlushClass, covered: usize) {
        *self.flushes.entry(class).or_insert(0) += 1;
        self.covered_writes += covered as u64;
    }

    /// Adds stall cycles.
    pub fn record_stall(&mut self, cause: StallCause, cycles: u64) {
        *self.stalls.entry(cause).or_insert(0) += cycles;
    }

    /// Total flushes across classes.
    pub fn total_flushes(&self) -> u64 {
        self.flushes.values().sum()
    }

    /// Fraction of write-backs on the issuing core's critical path
    /// (Figure 6's metric), in `[0, 1]`. Returns 0 when nothing flushed.
    pub fn critical_writeback_fraction(&self) -> f64 {
        let total = self.total_flushes();
        if total == 0 {
            return 0.0;
        }
        let crit = self.flushes.get(&FlushClass::Critical).copied().unwrap_or(0);
        crit as f64 / total as f64
    }

    /// Moves one background write-back into the critical class: a store
    /// had to wait for a proactively issued flush to complete (the
    /// residual conflict the paper's proactive flushing cannot hide).
    pub fn reclassify_background_to_critical(&mut self) {
        let bg = self.flushes.entry(FlushClass::Background).or_insert(0);
        if *bg > 0 {
            *bg -= 1;
            *self.flushes.entry(FlushClass::Critical).or_insert(0) += 1;
        }
    }

    /// Average writes coalesced per flush.
    pub fn coalescing(&self) -> f64 {
        let total = self.total_flushes();
        if total == 0 {
            return 0.0;
        }
        self.covered_writes as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_classification_math() {
        let mut s = Stats::default();
        s.record_flush(FlushClass::Critical, 3);
        s.record_flush(FlushClass::Background, 2);
        s.record_flush(FlushClass::Background, 1);
        s.record_flush(FlushClass::Sync, 1);
        assert_eq!(s.total_flushes(), 4);
        assert!((s.critical_writeback_fraction() - 0.25).abs() < 1e-9);
        assert!((s.coalescing() - 7.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = Stats::default();
        assert_eq!(s.critical_writeback_fraction(), 0.0);
        assert_eq!(s.coalescing(), 0.0);
    }

    #[test]
    fn stall_accumulation() {
        let mut s = Stats::default();
        s.record_stall(StallCause::LoadMiss, 10);
        s.record_stall(StallCause::LoadMiss, 5);
        assert_eq!(s.stalls[&StallCause::LoadMiss], 15);
    }
}
