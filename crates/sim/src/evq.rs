//! Calendar-wheel event queue for the discrete-event machine.
//!
//! The run loop used to pair a `BinaryHeap<Reverse<(time, seq, id)>>`
//! with a `HashMap<id, Ev>` — every event paid a heap sift plus a hash
//! insert and remove. The wheel stores payloads inline in time-indexed
//! slots: a push is a `Vec` push into `slots[time % capacity]`, a pop
//! scans an occupancy bitmap for the next non-empty slot.
//!
//! # Ordering invariant
//!
//! Pops are in ascending `(time, seq)` order, identical to the heap.
//! The argument: every in-wheel entry satisfies
//! `cur <= time < cur + capacity` (`cur` = time of the last pop), so a
//! slot can only ever hold entries of **one** time value — two times
//! sharing a slot would differ by a multiple of `capacity`, which the
//! window forbids. Circular slot distance from `cur` therefore equals
//! time distance, and a bitmap scan finds the minimum-time slot.
//! Within a slot, entries are popped by minimum `seq` (migration from
//! the overflow list can break insertion order, so order is selected,
//! not assumed). Entries beyond the window — NVM completions behind a
//! long queue — wait in an unordered overflow list and migrate into
//! the wheel when the window reaches them.

/// Slot count. Must be a power of two. Deliberately small: the slot
/// array has to stay host-cache-resident, and nearly all traffic
/// (core steps, L1/NoC hops, cached-NVM completions) lands within a
/// couple hundred cycles. Longer delays — uncached NVM (350 cycles)
/// plus queueing — take the overflow path, which costs a linear
/// migration scan but is rare enough not to matter (sweeping 64–2048
/// showed larger wheels lose more to cache misses than they save in
/// overflow handling).
const CAPACITY: usize = 256;

/// A calendar-wheel priority queue of `(time, seq, payload)` entries,
/// popped in ascending `(time, seq)` order.
#[derive(Debug)]
pub struct EventWheel<T> {
    slots: Vec<Vec<(u64, u64, T)>>,
    /// One bit per slot: slot non-empty.
    occupied: [u64; CAPACITY / 64],
    /// Entries with `time >= cur + CAPACITY`, unordered.
    overflow: Vec<(u64, u64, T)>,
    overflow_min: u64,
    /// Time of the last pop; no live entry is earlier.
    cur: u64,
    len: usize,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        EventWheel::new()
    }
}

impl<T> EventWheel<T> {
    /// An empty wheel starting at time 0.
    pub fn new() -> Self {
        EventWheel {
            slots: (0..CAPACITY).map(|_| Vec::new()).collect(),
            occupied: [0; CAPACITY / 64],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            cur: 0,
            len: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues an entry. `time` must not precede the last popped time,
    /// and `(time, seq)` pairs are assumed unique (the machine's global
    /// schedule counter guarantees both).
    pub fn push(&mut self, time: u64, seq: u64, payload: T) {
        debug_assert!(time >= self.cur, "event scheduled in the past");
        self.len += 1;
        if time - self.cur < CAPACITY as u64 {
            let s = time as usize % CAPACITY;
            self.slots[s].push((time, seq, payload));
            self.occupied[s / 64] |= 1 << (s % 64);
        } else {
            self.overflow.push((time, seq, payload));
            self.overflow_min = self.overflow_min.min(time);
        }
    }

    /// Index of the first occupied slot at or after circular position
    /// `start` (wrapping), or `None` if the wheel part is empty.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let words = self.occupied.len();
        let mut w = start / 64;
        let mut mask = u64::MAX << (start % 64);
        for _ in 0..=words {
            let bits = self.occupied[w] & mask;
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w = (w + 1) % words;
            mask = u64::MAX;
        }
        None
    }

    /// Moves every overflow entry now inside the window into the wheel.
    fn migrate_overflow(&mut self) {
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let t = self.overflow[i].0;
            if t - self.cur < CAPACITY as u64 {
                let (time, seq, payload) = self.overflow.swap_remove(i);
                let s = time as usize % CAPACITY;
                self.slots[s].push((time, seq, payload));
                self.occupied[s / 64] |= 1 << (s % 64);
            } else {
                min = min.min(t);
                i += 1;
            }
        }
        self.overflow_min = min;
    }

    /// Drains **every** entry sharing the earliest queued time into
    /// `out` (cleared first), in ascending `seq` order, and returns
    /// that time. Because a slot holds entries of exactly one time
    /// value (see the ordering invariant above), the batch is the
    /// whole slot vector: the drain is one bitmap probe plus a buffer
    /// swap, where `k` calls to [`pop`](Self::pop) would re-probe the
    /// bitmap and linear-scan the shrinking slot `k` times. The swap
    /// also recycles `out`'s capacity into the emptied slot, so a
    /// run-loop reusing one scratch buffer allocates nothing in
    /// steady state.
    ///
    /// Entries pushed *while the caller processes the batch* land at
    /// the same or a later time with strictly larger `seq`s, so
    /// `pop_batch`-then-process yields the exact `(time, seq)` global
    /// order of repeated `pop` (a same-time straggler is simply
    /// returned by the next call).
    pub fn pop_batch(&mut self, out: &mut Vec<(u64, u64, T)>) -> Option<u64> {
        out.clear();
        if self.len == 0 {
            return None;
        }
        loop {
            let slot = self.next_occupied(self.cur as usize % CAPACITY);
            if !self.overflow.is_empty() {
                match slot.map(|s| self.slots[s][0].0) {
                    Some(t) if self.overflow_min <= t => {
                        self.cur = self.overflow_min;
                        self.migrate_overflow();
                        continue;
                    }
                    Some(_) => {}
                    None => {
                        self.cur = self.overflow_min;
                        self.migrate_overflow();
                        continue;
                    }
                }
            }
            let Some(s) = slot else {
                unreachable!("len > 0 but no entries found")
            };
            let entries = &mut self.slots[s];
            let t = entries[0].0;
            std::mem::swap(entries, out);
            self.occupied[s / 64] &= !(1 << (s % 64));
            if out.len() > 1 {
                out.sort_unstable_by_key(|e| e.1);
            }
            self.cur = t;
            self.len -= out.len();
            return Some(t);
        }
    }

    /// Removes and returns the earliest `(time, seq, payload)` entry.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let slot = self.next_occupied(self.cur as usize % CAPACITY);
            if !self.overflow.is_empty() {
                // All in-wheel entries share one time per slot; peek it.
                match slot.map(|s| self.slots[s][0].0) {
                    Some(t) if self.overflow_min <= t => {
                        // The overflow holds the earliest entry — or one
                        // that ties on time and must compete on seq.
                        // Advance the window to it and migrate. (Safe:
                        // nothing live is earlier than overflow_min <= t.)
                        self.cur = self.overflow_min;
                        self.migrate_overflow();
                        continue;
                    }
                    Some(_) => {}
                    None => {
                        self.cur = self.overflow_min;
                        self.migrate_overflow();
                        continue;
                    }
                }
            }
            let Some(s) = slot else {
                unreachable!("len > 0 but no entries found")
            };
            let entries = &mut self.slots[s];
            let mut best = 0;
            for i in 1..entries.len() {
                if entries[i].1 < entries[best].1 {
                    best = i;
                }
            }
            let entry = entries.swap_remove(best);
            if entries.is_empty() {
                self.occupied[s / 64] &= !(1 << (s % 64));
            }
            self.cur = entry.0;
            self.len -= 1;
            return Some(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the shuffle needs no external crate.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = EventWheel::new();
        w.push(5, 2, "b");
        w.push(5, 1, "a");
        w.push(3, 3, "c");
        w.push(9, 0, "d");
        let order: Vec<_> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(
            order,
            vec![(3, 3, "c"), (5, 1, "a"), (5, 2, "b"), (9, 0, "d")]
        );
    }

    #[test]
    fn far_events_overflow_and_come_back_ordered() {
        let mut w = EventWheel::new();
        w.push(0, 0, 0u64);
        // Far beyond the window — multiple wrap distances.
        for (i, t) in [CAPACITY as u64 * 3 + 5, CAPACITY as u64 + 1, 40_000]
            .into_iter()
            .enumerate()
        {
            w.push(t, i as u64 + 1, t);
        }
        assert_eq!(w.pop().unwrap().0, 0);
        assert_eq!(w.pop().unwrap().0, CAPACITY as u64 + 1);
        // Push near events after the window advanced.
        w.push(CAPACITY as u64 + 2, 10, 999);
        assert_eq!(w.pop().unwrap().2, 999);
        assert_eq!(w.pop().unwrap().0, CAPACITY as u64 * 3 + 5);
        assert_eq!(w.pop().unwrap().0, 40_000);
        assert!(w.pop().is_none());
    }

    #[test]
    fn matches_binary_heap_on_random_workload() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut wheel = EventWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut pending = 0usize;
        for _ in 0..50_000 {
            let r = xorshift(&mut rng);
            let do_push = pending == 0 || !r.is_multiple_of(3);
            if do_push {
                // Mix of short delays, same-cycle events, and rare far
                // NVM-queue completions.
                let delay = match r % 10 {
                    0 => 0,
                    1..=6 => (r >> 8) % 64,
                    7 | 8 => (r >> 8) % 400,
                    _ => 1000 + (r >> 8) % 10_000,
                };
                seq += 1;
                wheel.push(now + delay, seq, (now + delay, seq));
                heap.push(Reverse((now + delay, seq)));
                pending += 1;
            } else {
                let (t, s, payload) = wheel.pop().expect("wheel has entries");
                let Reverse(expect) = heap.pop().expect("heap has entries");
                assert_eq!((t, s), expect, "pop order diverged from heap");
                assert_eq!(payload, expect, "payload follows its key");
                now = t;
                pending -= 1;
            }
        }
        while let Some((t, s, _)) = wheel.pop() {
            let Reverse(expect) = heap.pop().unwrap();
            assert_eq!((t, s), expect);
        }
        assert!(heap.is_empty());
        assert!(wheel.is_empty());
    }

    #[test]
    fn batch_drain_matches_pop_order() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut rng = 0xfeed_beef_0bad_cafeu64;
        let mut wheel = EventWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut scratch: Vec<(u64, u64, (u64, u64))> = Vec::new();
        for round in 0..8_000 {
            // Bursts of same-cycle events so batches are > 1 entry,
            // plus far overflow completions that tie back in on seq.
            let burst = 1 + xorshift(&mut rng) % 4;
            for _ in 0..burst {
                let r = xorshift(&mut rng);
                let delay = match r % 8 {
                    0..=2 => 0,
                    3..=5 => (r >> 8) % 48,
                    6 => (r >> 8) % 300,
                    _ => 1000 + (r >> 8) % 5_000,
                };
                seq += 1;
                wheel.push(now + delay, seq, (now + delay, seq));
                heap.push(Reverse((now + delay, seq)));
            }
            if round % 2 == 1 {
                let t = wheel.pop_batch(&mut scratch).expect("wheel has entries");
                assert!(!scratch.is_empty(), "a drained batch is never empty");
                for &(bt, bs, payload) in &scratch {
                    assert_eq!(bt, t, "batch mixes timestamps");
                    let Reverse(expect) = heap.pop().expect("heap has entries");
                    assert_eq!((bt, bs), expect, "batch order diverged from heap");
                    assert_eq!(payload, expect);
                }
                now = t;
            }
        }
        while wheel.pop_batch(&mut scratch).is_some() {
            for &(bt, bs, _) in &scratch {
                let Reverse(expect) = heap.pop().unwrap();
                assert_eq!((bt, bs), expect);
            }
        }
        assert!(heap.is_empty());
        assert!(wheel.is_empty());
        assert!(wheel.pop_batch(&mut scratch).is_none());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut w = EventWheel::new();
        assert!(w.is_empty());
        w.push(1, 1, ());
        w.push(CAPACITY as u64 * 2, 2, ());
        assert_eq!(w.len(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
    }
}
