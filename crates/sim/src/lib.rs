//! Discrete-event multicore timing simulator — the substrate on which
//! the paper's evaluation (§6.3) runs.
//!
//! The simulated machine reproduces Table 1: out-of-order-issue cores
//! with non-blocking store buffers, private L1s (32 KB, 8-way, 2-cycle),
//! a banked NUCA LLC (30-cycle) with an embedded MESI directory, a 2D
//! mesh interconnect, and PCM-like NVM controllers with a cached
//! (battery-backed DRAM, 120-cycle) and an uncached (350-cycle) mode.
//!
//! Execution is trace-driven, like the paper's Pin/PRiME methodology:
//! each core replays one thread's memory events from an
//! [`lrp_model::Trace`], enforcing the recorded reads-from edges so that
//! synchronization (and therefore the coherence downgrades LRP hooks
//! into) re-occurs faithfully.
//!
//! Persistency enforcement is pluggable: any [`lrp_core::PersistMech`]
//! (LRP, SB, BB, NOP) attaches to each L1 controller. The simulator
//! executes the mechanism's staged flush plans through a per-core
//! sequencer that models the paper's pending-persists counter, persists
//! write-backs at the directory (invariant I4), and records a
//! [`lrp_model::spec::PersistSchedule`] so every run can be checked
//! against the RP specification and replayed for crash recovery.

pub mod cache;
pub mod config;
pub mod evq;
pub mod machine;
pub mod noc;
pub mod report;

/// Aggregate run statistics — now defined in `lrp-obs` (so mechanism
/// crates and the observability layer share one vocabulary), re-exported
/// here under its historical path.
pub use lrp_obs::stats;

pub use config::{Mechanism, NvmMode, SimConfig};
pub use machine::{RunResult, Sim};
pub use stats::{FlushClass, StallCause, Stats};
