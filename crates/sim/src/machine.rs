//! The discrete-event machine: replay cores, L1 controllers with
//! pluggable persistency mechanisms, a directory-based MESI protocol
//! with per-line blocking, NVM controllers, and the per-core flush
//! sequencer that models the paper's pending-persists counter.
//!
//! # Protocol overview
//!
//! The directory (embedded in the LLC banks) serializes transactions per
//! line: while a transaction is in flight the line is *busy* and later
//! requests queue, which keeps the L1 side simple (no ack counting at
//! requestors, no NACK livelock). Races between evictions and forwards
//! are reconciled at the directory: an L1 that already evicted a line
//! answers a forward with a *stale* response, and the directory pairs it
//! with the in-flight `PutM`.
//!
//! # Persistency integration
//!
//! Stores report to the mechanism in two phases (plan, then commit once
//! `flush_before` drained). Flush plans materialize immediately: each
//! planned line's buffered writes are *taken* (handing them to the
//! persist subsystem and clearing the line's metadata), so overlapping
//! plans never duplicate work. The sequencer executes one job at a
//! time, stage by stage, draining the core's pending-persists counter
//! between stages — releases therefore persist strictly after everything
//! the mechanism ordered before them, and the recorded
//! [`PersistSchedule`] can be validated against the RP rules.

use crate::cache::{CohState, L1Cache, L1ViewAdapter};
use crate::config::SimConfig;
use crate::evq::EventWheel;
use crate::stats::{FlushClass, StallCause, Stats};
use lrp_core::mech::{EngineRun, PersistMech, StoreKind};
use lrp_model::spec::PersistSchedule;
use lrp_model::{EventId, EventKind, FxHashMap, LineAddr, Trace};
use lrp_obs::{EngineState, ObsReport, Recorder, RecorderConfig};
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// Messages and events
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Msg {
    GetS {
        core: usize,
    },
    GetM {
        core: usize,
    },
    PutM {
        core: usize,
        covered: Vec<EventId>,
        dirty: bool,
        persist: bool,
    },
    FwdGetS {
        requester: usize,
    },
    FwdGetM {
        requester: usize,
    },
    Inv,
    InvAck,
    DownResp(DownRespData),
    Data {
        state: CohState,
    },
    PutAck,
    NvmReadDone,
    DirPersistDone,
}

#[derive(Debug, Clone)]
struct DownRespData {
    covered: Vec<EventId>,
    dirty: bool,
    persist_at_dir: bool,
    stale: bool,
    putm_coming: bool,
    kept_shared: bool,
}

#[derive(Debug, Clone)]
enum Ev {
    CoreStep(usize),
    StoreStep(usize),
    JobStep(usize),
    L1Msg(usize, LineAddr, Msg),
    DirMsg(LineAddr, Msg),
    NvmDone(usize, NvmReq),
}

/// Wheel-resident form of [`Ev`]: 16 bytes, `Copy`. The frequent
/// core/store/job steps encode entirely inline; message payloads park
/// in the machine's recycled [`MsgSlot`] pool and travel as a slot
/// index, so every queue push/pop/compact moves a quarter of the bytes
/// the full enum would.
#[derive(Clone, Copy)]
struct PackedEv {
    /// [`Ev`] variant discriminant (0..=5, declaration order).
    tag: u8,
    /// Core / controller index for the variants that carry one.
    unit: u8,
    /// Pool slot for `L1Msg` / `DirMsg` / `NvmDone`, else unused.
    slot: u32,
    /// Line address for `L1Msg` / `DirMsg`, else unused.
    line: LineAddr,
}

/// One parked message payload (see [`PackedEv::slot`]).
enum MsgSlot {
    Empty,
    Msg(Msg),
    Nvm(NvmReq),
}

#[derive(Debug, Clone)]
struct NvmReq {
    line: LineAddr,
    covered: Vec<EventId>,
    origin: NvmOrigin,
}

#[derive(Debug, Clone)]
enum NvmOrigin {
    /// Engine flush from a core's sequencer.
    CoreFlush(usize),
    /// Directory-side write-back persist (I4).
    DirPersist,
    /// Line fetch from NVM on an LLC miss.
    DirRead,
}

// ---------------------------------------------------------------------
// Core (trace replay)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Ready { at: u64 },
    WaitRf,
    WaitLoad { line: LineAddr },
    WaitStoreSlot,
    WaitLocalDrain,
    WaitRmw,
    Done,
}

/// A trace event in replay-hot form: exactly the fields `core_step`
/// consults, with the line address, `OpSite` index, and annotation
/// bits precomputed. 24 bytes against `Event`'s 48 — the per-step
/// fetch reads half the memory and skips the `line_of` /
/// `event_sites` lookups on the hottest path in the simulator.
#[derive(Debug, Clone, Copy)]
struct ReplayOp {
    line: LineAddr,
    id: EventId,
    /// Producer event id + 1 (`0` = reads the initial image).
    rf_plus1: u32,
    site: u16,
    kind: EventKind,
    release: bool,
    acquire: bool,
}

#[derive(Debug)]
struct Core {
    ops: Vec<ReplayOp>,
    pc: usize,
    state: CoreState,
    store_q: VecDeque<StoreTask>,
    finish: Option<u64>,
    stall_since: u64,
    stall_cause: Option<StallCause>,
    /// `OpSite` index of the op this core is currently executing
    /// (attribution only — never consulted for timing).
    cur_site: u16,
    /// Line the current stall waits on, for per-line blame.
    stall_line: Option<LineAddr>,
    /// The current stall spent time behind a mechanism-ordered flush
    /// (head store task reached Flushing/WaitAck while stalled).
    stall_mech: bool,
}

#[derive(Debug)]
struct StoreTask {
    ev: EventId,
    line: LineAddr,
    kind: StoreKind,
    phase: StorePhase,
    is_rmw: bool,
    persist_after: bool,
    /// Delegation flush to materialize once the store has landed.
    background_after: EngineRun,
    /// Parked behind an in-flight flush of its line (residual conflict).
    parked: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StorePhase {
    NeedM,
    WaitM,
    Flushing,
    WaitAck,
}

// ---------------------------------------------------------------------
// Flush sequencer
// ---------------------------------------------------------------------

#[derive(Debug)]
struct FlushDesc {
    line: LineAddr,
    covered: Vec<EventId>,
    /// `OpSite` blamed for the flush: the site of the write that first
    /// dirtied the line (falls back to the issuing core's current site).
    site: u16,
}

#[derive(Debug)]
enum JobDone {
    None,
    StoreReady,
    RmwAck,
    Evict {
        victim: LineAddr,
    },
    Downgrade {
        line: LineAddr,
        is_gets: bool,
        /// The downgraded line held a dirty release (audited as I2).
        was_release: bool,
    },
}

#[derive(Debug)]
struct Job {
    stages: VecDeque<Vec<FlushDesc>>,
    done: JobDone,
    class: FlushClass,
    scan_charged: bool,
    issued_any: bool,
}

#[derive(Debug, Default)]
struct Sequencer {
    jobs: VecDeque<Job>,
    pending: u64,
    /// True when a JobStep event is already scheduled (avoid duplicates).
    armed: bool,
}

// ---------------------------------------------------------------------
// L1 controller
// ---------------------------------------------------------------------

struct L1 {
    cache: L1Cache,
    mech: Box<dyn PersistMech>,
    seq: Sequencer,
    /// Eviction buffer. A handful of entries at most (bounded by misses
    /// with write-backs in flight), so a linear-scan `Vec` beats a hash
    /// table.
    evict_buf: Vec<(LineAddr, EvictEntry)>,
    deferred: Vec<(LineAddr, Msg)>,
    /// Lines with engine flushes in flight (issue → ack), with a count
    /// each. Mechanisms that forbid epoch coalescing (BB) stall stores
    /// to such lines — the residual conflict wait that proactive
    /// flushing leaves behind. Bounded by `flush_mshrs`, linear scan.
    inflight: Vec<(LineAddr, u32)>,
    /// Lines with a downgrade in progress (engine run before the
    /// response). New stores to such a line wait: the line is being
    /// handed to the requester and must not absorb writes the response
    /// would otherwise carry away unpersisted.
    downgrading: Vec<LineAddr>,
}

impl L1 {
    fn evict_get(&self, line: LineAddr) -> Option<&EvictEntry> {
        self.evict_buf
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, e)| e)
    }

    fn evict_get_mut(&mut self, line: LineAddr) -> Option<&mut EvictEntry> {
        self.evict_buf
            .iter_mut()
            .find(|(l, _)| *l == line)
            .map(|(_, e)| e)
    }

    fn evict_insert(&mut self, line: LineAddr, entry: EvictEntry) {
        debug_assert!(self.evict_get(line).is_none(), "evict entry exists");
        self.evict_buf.push((line, entry));
    }

    fn evict_remove(&mut self, line: LineAddr) {
        if let Some(i) = self.evict_buf.iter().position(|(l, _)| *l == line) {
            self.evict_buf.swap_remove(i);
        }
    }

    fn inflight_contains(&self, line: LineAddr) -> bool {
        self.inflight.iter().any(|(l, _)| *l == line)
    }

    fn inflight_inc(&mut self, line: LineAddr) {
        if let Some((_, n)) = self.inflight.iter_mut().find(|(l, _)| *l == line) {
            *n += 1;
        } else {
            self.inflight.push((line, 1));
        }
    }

    /// Decrements the line's in-flight count; true when the line had an
    /// entry that just drained to zero.
    fn inflight_dec(&mut self, line: LineAddr) -> bool {
        let Some(i) = self.inflight.iter().position(|(l, _)| *l == line) else {
            return false;
        };
        self.inflight[i].1 -= 1;
        if self.inflight[i].1 == 0 {
            self.inflight.swap_remove(i);
            true
        } else {
            false
        }
    }
}

#[derive(Debug)]
struct EvictEntry {
    covered: Vec<EventId>,
    dirty: bool,
    persist: bool,
    sent: bool,
}

// ---------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    Uncached,
    Shared(Vec<usize>),
    Owned(usize),
}

#[derive(Debug)]
struct DirLine {
    state: DirState,
    in_llc: bool,
    busy: Option<Trans>,
    queue: VecDeque<Msg>,
}

impl Default for DirLine {
    fn default() -> Self {
        DirLine {
            state: DirState::Uncached,
            in_llc: false,
            busy: None,
            queue: VecDeque::new(),
        }
    }
}

#[derive(Debug)]
struct Trans {
    requester: usize,
    is_getm: bool,
    phase: TransPhase,
    putm_stash: Option<(Vec<EventId>, bool, bool)>,
    putack_to: Option<usize>,
}

#[derive(Debug, PartialEq, Eq)]
enum TransPhase {
    NvmFetch,
    AwaitDownResp,
    AwaitStalePutm { kept_shared: bool },
    AwaitInvAcks(usize),
    AwaitPersist,
    AwaitPutPersist,
}

// ---------------------------------------------------------------------
// NVM controller
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Nvm {
    next_free: u64,
}

/// One completed NVM flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistRecord {
    /// Global flush sequence number (the persist stamp).
    pub stamp: u64,
    /// Completion cycle.
    pub time: u64,
    /// The flushed line.
    pub line: LineAddr,
    /// Write events made durable by this flush.
    pub covered: Vec<EventId>,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunResult {
    /// Timing and event statistics.
    pub stats: Stats,
    /// Persist stamps per write event (validated against RP in tests).
    pub schedule: PersistSchedule,
    /// The full flush log in completion order (crash-point sampling).
    pub persist_log: Vec<PersistRecord>,
    /// Observability report, present iff the run was instrumented via
    /// [`Sim::with_recorder`].
    pub obs: Option<ObsReport>,
}

// ---------------------------------------------------------------------
// The machine
// ---------------------------------------------------------------------

/// The simulated machine, constructed from a config and a trace.
pub struct Sim {
    cfg: SimConfig,
    now: u64,
    seq: u64,
    /// Calendar-wheel event queue with inline payloads — see
    /// [`crate::evq`] for the ordering argument.
    evq: EventWheel<PackedEv>,
    /// Parked message payloads for queued [`PackedEv`]s, with a free
    /// list so slots recycle instead of allocating.
    msg_pool: Vec<MsgSlot>,
    msg_free: Vec<u32>,
    cores: Vec<Core>,
    l1s: Vec<L1>,
    /// Directory lines, indexed densely; `dir_ids` interns line
    /// addresses on first touch.
    dir: Vec<DirLine>,
    dir_ids: FxHashMap<LineAddr, u32>,
    nvms: Vec<Nvm>,
    performed: Vec<bool>,
    /// Cores waiting on a reads-from producer, keyed by event id.
    /// Sparse: only events actually waited on ever get an entry, so
    /// construction does not scale with trace length.
    rf_waiters: FxHashMap<EventId, Vec<usize>>,
    /// Persist stamp per event, stored as `stamp + 1` (0 = never
    /// persisted) so the table is plain zeroed memory: fresh pages are
    /// not touched until a write actually persists.
    stamps: Vec<u64>,
    /// Point-to-point FIFO delivery: earliest next arrival per
    /// (src, dst) tile pair (flat `src * ntiles + dst` table), so
    /// protocol messages on one virtual channel never reorder (grants
    /// cannot be overtaken by forwards). Zero = channel never used.
    chan_next: Vec<u64>,
    ntiles: usize,
    flush_seq: u64,
    persist_log: Vec<PersistRecord>,
    stats: Stats,
    /// Event/metric/audit collection; `None` keeps every hook to a
    /// single branch.
    recorder: Option<Recorder>,
    /// Interned `OpSite` labels carried over from the trace.
    site_names: Vec<String>,
    /// Per-event site index, parallel to the trace's event ids.
    event_sites: Vec<u16>,
}

impl Sim {
    /// Builds a machine replaying `trace` under `cfg`.
    pub fn new(cfg: SimConfig, trace: &Trace) -> Self {
        let ncores = trace.nthreads as usize;
        assert!(
            ncores <= cfg.mesh_dim * cfg.mesh_dim,
            "trace has more threads than the machine has cores"
        );
        // PackedEv carries core / NVM-controller indices in a byte.
        assert!(ncores <= 256 && cfg.nvm_ctrls <= 256);
        let mut counts = vec![0usize; ncores];
        for e in &trace.events {
            counts[e.tid as usize] += 1;
        }
        let mut per_core: Vec<Vec<ReplayOp>> =
            counts.iter().map(|&n| Vec::with_capacity(n)).collect();
        for e in &trace.events {
            per_core[e.tid as usize].push(ReplayOp {
                line: lrp_model::line_of(e.addr),
                id: e.id,
                rf_plus1: e.rf.map_or(0, |w| w + 1),
                site: trace.event_sites.get(e.id as usize).copied().unwrap_or(0),
                kind: e.kind,
                release: e.annot.is_release(),
                acquire: e.annot.is_acquire(),
            });
        }
        let cores = per_core
            .into_iter()
            .map(|ops| Core {
                ops,
                pc: 0,
                state: CoreState::Ready { at: 0 },
                store_q: VecDeque::new(),
                finish: None,
                stall_since: 0,
                stall_cause: None,
                cur_site: 0,
                stall_line: None,
                stall_mech: false,
            })
            .collect::<Vec<_>>();
        let l1s = (0..ncores)
            .map(|_| L1 {
                cache: L1Cache::new(cfg.l1_sets(), cfg.l1_ways),
                mech: cfg.build_mech(),
                seq: Sequencer::default(),
                evict_buf: Vec::new(),
                deferred: Vec::new(),
                inflight: Vec::new(),
                downgrading: Vec::new(),
            })
            .collect::<Vec<_>>();
        let nvms = (0..cfg.nvm_ctrls).map(|_| Nvm::default()).collect();
        let nevents = trace.events.len();
        let ntiles = cfg.mesh_dim * cfg.mesh_dim;
        let mut sim = Sim {
            cfg,
            now: 0,
            seq: 0,
            evq: EventWheel::new(),
            msg_pool: Vec::new(),
            msg_free: Vec::new(),
            cores,
            l1s,
            dir: Vec::new(),
            dir_ids: FxHashMap::default(),
            nvms,
            performed: vec![false; nevents],
            rf_waiters: FxHashMap::default(),
            stamps: vec![0; nevents],
            chan_next: vec![0; ntiles * ntiles],
            ntiles,
            flush_seq: 0,
            persist_log: Vec::new(),
            stats: Stats::default(),
            recorder: None,
            site_names: trace.site_names.clone(),
            event_sites: trace.event_sites.clone(),
        };
        // Lines of the initial durable image start both in NVM and in
        // the LLC: the paper collects statistics only after the
        // structure is populated and warm (§6.1), so the working set is
        // LLC-resident at measurement start.
        for &(a, _) in &trace.initial_mem {
            let di = sim.dir_id(lrp_model::line_of(a));
            sim.dir[di].in_llc = true;
        }
        for c in 0..ncores {
            sim.schedule(0, Ev::CoreStep(c));
        }
        sim
    }

    /// Dense directory index of a line, interned on first touch.
    fn dir_id(&mut self, line: LineAddr) -> usize {
        if let Some(&i) = self.dir_ids.get(&line) {
            return i as usize;
        }
        let i = self.dir.len();
        self.dir.push(DirLine::default());
        self.dir_ids.insert(line, i as u32);
        i
    }

    /// Attaches a recorder: the run produces an [`ObsReport`] and every
    /// mechanism starts buffering its internal events for draining.
    pub fn with_recorder(mut self, cfg: RecorderConfig) -> Self {
        for l1 in &mut self.l1s {
            l1.mech.obs_enable();
        }
        let mut r = Recorder::new(cfg, self.l1s.len() as u32);
        r.set_site_names(self.site_names.clone());
        if let Some(l1) = self.l1s.first() {
            r.set_crit_drain_kind(l1.mech.crit_drain_kind());
        }
        self.recorder = Some(r);
        self
    }

    /// The `OpSite` label index of a trace event (0 = unknown).
    fn site_of(&self, ev: EventId) -> u16 {
        self.event_sites.get(ev as usize).copied().unwrap_or(0)
    }

    /// Drains mechanism-internal events from core `c` into the recorder,
    /// stamped with the current time and core identity.
    fn drain_mech_obs(&mut self, c: usize) {
        if self.recorder.is_none() {
            return;
        }
        let evs = self.l1s[c].mech.obs_drain();
        if evs.is_empty() {
            return;
        }
        let now = self.now;
        if let Some(r) = self.recorder.as_mut() {
            r.mech_events(now, c as u32, &evs);
        }
    }

    // -- infrastructure -------------------------------------------------

    fn schedule(&mut self, delay: u64, ev: Ev) {
        let p = match ev {
            Ev::CoreStep(c) => PackedEv {
                tag: 0,
                unit: c as u8,
                slot: 0,
                line: 0,
            },
            Ev::StoreStep(c) => PackedEv {
                tag: 1,
                unit: c as u8,
                slot: 0,
                line: 0,
            },
            Ev::JobStep(c) => PackedEv {
                tag: 2,
                unit: c as u8,
                slot: 0,
                line: 0,
            },
            Ev::L1Msg(c, line, msg) => PackedEv {
                tag: 3,
                unit: c as u8,
                slot: self.park(MsgSlot::Msg(msg)),
                line,
            },
            Ev::DirMsg(line, msg) => PackedEv {
                tag: 4,
                unit: 0,
                slot: self.park(MsgSlot::Msg(msg)),
                line,
            },
            Ev::NvmDone(n, req) => PackedEv {
                tag: 5,
                unit: n as u8,
                slot: self.park(MsgSlot::Nvm(req)),
                line: 0,
            },
        };
        self.seq += 1;
        self.evq.push(self.now + delay, self.seq, p);
    }

    fn park(&mut self, payload: MsgSlot) -> u32 {
        if let Some(i) = self.msg_free.pop() {
            self.msg_pool[i as usize] = payload;
            i
        } else {
            self.msg_pool.push(payload);
            (self.msg_pool.len() - 1) as u32
        }
    }

    /// Rehydrates a popped [`PackedEv`], returning its parked payload
    /// slot to the free list.
    fn unpack(&mut self, p: PackedEv) -> Ev {
        match p.tag {
            0 => Ev::CoreStep(p.unit as usize),
            1 => Ev::StoreStep(p.unit as usize),
            2 => Ev::JobStep(p.unit as usize),
            _ => {
                let payload =
                    std::mem::replace(&mut self.msg_pool[p.slot as usize], MsgSlot::Empty);
                self.msg_free.push(p.slot);
                match (p.tag, payload) {
                    (3, MsgSlot::Msg(m)) => Ev::L1Msg(p.unit as usize, p.line, m),
                    (4, MsgSlot::Msg(m)) => Ev::DirMsg(p.line, m),
                    (5, MsgSlot::Nvm(r)) => Ev::NvmDone(p.unit as usize, r),
                    _ => unreachable!("packed event desynced from payload pool"),
                }
            }
        }
    }

    fn tile_of_core(&self, c: usize) -> usize {
        c
    }

    fn tile_of_bank(&self, line: LineAddr) -> usize {
        (line as usize) % self.cfg.llc_banks % (self.cfg.mesh_dim * self.cfg.mesh_dim)
    }

    fn mesh(&self) -> crate::noc::Mesh {
        crate::noc::Mesh {
            dim: self.cfg.mesh_dim,
            base: self.cfg.noc_base,
            per_hop: self.cfg.noc_per_hop,
            data_extra: self.cfg.noc_data_extra,
        }
    }

    fn tile_of_nvm(&self, n: usize) -> usize {
        self.mesh().nvm_tile(n)
    }

    fn nvm_of(&self, line: LineAddr) -> usize {
        (line as usize) % self.cfg.nvm_ctrls
    }

    fn noc(&mut self, src: usize, dst: usize, data: bool) -> u64 {
        self.stats.noc_messages += 1;
        self.mesh().latency(src, dst, data)
    }

    /// FIFO arrival time on the (src, dst) channel.
    fn ordered_delay(&mut self, src: usize, dst: usize, lat: u64) -> u64 {
        let chan = &mut self.chan_next[src * self.ntiles + dst];
        let arrival = (self.now + lat).max(*chan);
        *chan = arrival + 1;
        arrival - self.now
    }

    fn send_l1(&mut self, core: usize, line: LineAddr, msg: Msg, from_tile: usize, data: bool) {
        let dst = self.tile_of_core(core);
        let lat = self.noc(from_tile, dst, data);
        let d = self.ordered_delay(from_tile, dst, lat);
        self.schedule(d, Ev::L1Msg(core, line, msg));
    }

    fn send_dir(&mut self, line: LineAddr, msg: Msg, from_tile: usize, data: bool) {
        let dst = self.tile_of_bank(line);
        let lat = self.noc(from_tile, dst, data);
        let d = self.ordered_delay(from_tile, dst, lat);
        self.schedule(d, Ev::DirMsg(line, msg));
    }

    // -- run loop -------------------------------------------------------

    /// Runs to completion and returns the results.
    pub fn run(mut self) -> RunResult {
        // One slot visit drains every event sharing a timestamp; the
        // scratch buffer's capacity ping-pongs with the wheel slots so
        // the loop allocates nothing in steady state. Same-time events
        // scheduled while a batch is in flight carry larger seqs, so
        // the next `pop_batch` returns the same timestamp again and
        // the global (time, seq) order is exactly `pop`'s.
        let mut batch: Vec<(u64, u64, PackedEv)> = Vec::new();
        while let Some(t) = self.evq.pop_batch(&mut batch) {
            assert!(
                t <= self.cfg.max_cycles,
                "simulation exceeded max_cycles ({}): likely deadlock",
                self.cfg.max_cycles
            );
            self.now = t;
            for &(_, _, p) in &batch {
                let ev = self.unpack(p);
                match ev {
                    Ev::CoreStep(c) => self.core_step(c),
                    Ev::StoreStep(c) => self.store_step(c),
                    Ev::JobStep(c) => {
                        self.l1s[c].seq.armed = false;
                        self.job_step(c);
                    }
                    Ev::L1Msg(c, line, msg) => self.l1_msg(c, line, msg),
                    Ev::DirMsg(line, msg) => self.dir_msg(line, msg),
                    Ev::NvmDone(n, req) => self.nvm_done(n, req),
                }
            }
            if let Some(r) = self.recorder.as_mut() {
                r.maybe_sample(self.now, &self.stats);
            }
        }
        for c in &self.cores {
            assert!(
                c.finish.is_some(),
                "core never finished: replay deadlock (pc={}/{} state={:?})",
                c.pc,
                c.ops.len(),
                c.state
            );
        }
        self.stats.cycles = self
            .cores
            .iter()
            .filter_map(|c| c.finish)
            .max()
            .unwrap_or(0);
        debug_assert_eq!(
            self.stats.ops,
            self.cores.iter().map(|c| c.ops.len() as u64).sum::<u64>(),
            "online op count drifted from the replayed trace"
        );
        let mut schedule = PersistSchedule::new(self.stamps.len());
        for (i, &s) in self.stamps.iter().enumerate() {
            if s != 0 {
                schedule.set(i as EventId, s - 1);
            }
        }
        let end = self.now.max(self.stats.cycles);
        let obs = self.recorder.take().map(|r| r.finish(end, &self.stats));
        RunResult {
            stats: self.stats,
            schedule,
            persist_log: self.persist_log,
            obs,
        }
    }

    // -- core -----------------------------------------------------------

    fn begin_stall(&mut self, c: usize, cause: StallCause) {
        let core = &self.cores[c];
        let line = match core.state {
            CoreState::WaitLoad { line } => Some(line),
            _ => core.store_q.front().map(|t| t.line),
        };
        let mech = core
            .store_q
            .front()
            .map(|t| matches!(t.phase, StorePhase::Flushing | StorePhase::WaitAck))
            .unwrap_or(false);
        let core = &mut self.cores[c];
        core.stall_since = self.now;
        core.stall_cause = Some(cause);
        core.stall_line = line;
        core.stall_mech = mech;
        let now = self.now;
        if let Some(r) = self.recorder.as_mut() {
            r.stall_begin(now, c as u32, cause);
        }
    }

    /// Latches the mechanism-wait hint: the head store task moved into a
    /// flush phase while its core was stalled on the drain.
    fn note_mech_drain(&mut self, c: usize) {
        if self.cores[c].stall_cause == Some(StallCause::StoreDrain) {
            self.cores[c].stall_mech = true;
        }
    }

    fn end_stall(&mut self, c: usize) {
        if let Some(cause) = self.cores[c].stall_cause.take() {
            let dur = self.now - self.cores[c].stall_since;
            self.stats.record_stall(cause, dur);
            let line = self.cores[c].stall_line.take();
            let mech = std::mem::take(&mut self.cores[c].stall_mech);
            let now = self.now;
            if let Some(r) = self.recorder.as_mut() {
                r.stall_end(now, c as u32, cause, dur, line, mech);
            }
        }
    }

    fn core_resume(&mut self, c: usize, extra: u64) {
        self.end_stall(c);
        self.cores[c].state = CoreState::Ready {
            at: self.now + extra,
        };
        self.schedule(extra, Ev::CoreStep(c));
    }

    fn core_step(&mut self, c: usize) {
        match self.cores[c].state {
            CoreState::Ready { at } if at <= self.now => {}
            CoreState::Ready { at } => {
                let d = at - self.now;
                self.schedule(d, Ev::CoreStep(c));
                return;
            }
            _ => return,
        }
        if self.cores[c].pc >= self.cores[c].ops.len() {
            if self.cores[c].store_q.is_empty() {
                self.cores[c].state = CoreState::Done;
                self.cores[c].finish = Some(self.now);
            }
            // else: finish when the last store task completes.
            return;
        }
        let op = self.cores[c].ops[self.cores[c].pc];
        let line = op.line;
        let site = op.site;
        if self.cores[c].cur_site != site {
            self.cores[c].cur_site = site;
            if let Some(r) = self.recorder.as_mut() {
                r.set_core_site(c as u32, site);
            }
        }
        let is_store = op.kind == EventKind::Write;
        let is_rmw_success = op.kind == EventKind::RmwSuccess;
        let is_read = matches!(op.kind, EventKind::Read | EventKind::RmwFail);

        // Reads-from gating: a read effect waits until its producer has
        // performed (preserving the recorded execution's causality).
        if (is_read || is_rmw_success) && !self.rf_ready(c, op.rf_plus1) {
            return;
        }

        if is_read {
            // A load to a line with one of our own stores still in
            // flight waits for the buffer to drain past it.
            if !self.cores[c].store_q.is_empty()
                && self.cores[c].store_q.iter().any(|t| t.line == line)
            {
                self.cores[c].state = CoreState::WaitLocalDrain;
                self.begin_stall(c, StallCause::StoreDrain);
                return;
            }
            if self.l1s[c].cache.read_hit(line) {
                self.cores[c].pc += 1;
                self.stats.ops += 1;
                self.stats.load_hits += 1;
                self.core_resume(c, self.cfg.l1_latency + self.cfg.compute_gap);
            } else {
                self.stats.load_misses += 1;
                self.cores[c].state = CoreState::WaitLoad { line };
                self.begin_stall(c, StallCause::LoadMiss);
                let from = self.tile_of_core(c);
                self.send_dir(line, Msg::GetS { core: c }, from, false);
            }
            return;
        }

        if is_store {
            if self.cores[c].store_q.len() >= self.cfg.store_buffer {
                self.cores[c].state = CoreState::WaitStoreSlot;
                self.begin_stall(c, StallCause::StoreDrain);
                return;
            }
            let kind = if op.release {
                StoreKind::Release
            } else {
                StoreKind::Plain
            };
            let only = self.cores[c].store_q.is_empty();
            self.cores[c].store_q.push_back(StoreTask {
                ev: op.id,
                line,
                kind,
                phase: StorePhase::NeedM,
                is_rmw: false,
                persist_after: false,
                background_after: EngineRun::empty(),
                parked: false,
            });
            self.cores[c].pc += 1;
            self.stats.ops += 1;
            if only {
                self.schedule(0, Ev::StoreStep(c));
            }
            self.cores[c].state = CoreState::Ready {
                at: self.now + 1 + self.cfg.compute_gap,
            };
            self.schedule(1 + self.cfg.compute_gap, Ev::CoreStep(c));
            return;
        }

        if is_rmw_success {
            // RMWs serialize: drain the store buffer first.
            if !self.cores[c].store_q.is_empty() {
                self.cores[c].state = CoreState::WaitLocalDrain;
                self.begin_stall(c, StallCause::StoreDrain);
                return;
            }
            let kind = if op.acquire {
                StoreKind::RmwAcquire {
                    release: op.release,
                }
            } else if op.release {
                StoreKind::Release
            } else {
                StoreKind::Plain
            };
            self.cores[c].store_q.push_back(StoreTask {
                ev: op.id,
                line,
                kind,
                phase: StorePhase::NeedM,
                is_rmw: true,
                persist_after: false,
                background_after: EngineRun::empty(),
                parked: false,
            });
            self.cores[c].pc += 1;
            self.stats.ops += 1;
            self.cores[c].state = CoreState::WaitRmw;
            self.begin_stall(c, StallCause::StoreDrain);
            self.schedule(0, Ev::StoreStep(c));
        }
    }

    fn rf_ready(&mut self, c: usize, rf_plus1: u32) -> bool {
        if rf_plus1 != 0 {
            let w = rf_plus1 - 1;
            if !self.performed[w as usize] {
                self.cores[c].state = CoreState::WaitRf;
                self.begin_stall(c, StallCause::RfWait);
                self.rf_waiters.entry(w).or_default().push(c);
                return false;
            }
        }
        true
    }

    // -- store pipeline ---------------------------------------------------

    fn store_step(&mut self, c: usize) {
        let Some(task) = self.cores[c].store_q.front() else {
            return;
        };
        if task.phase != StorePhase::NeedM {
            return;
        }
        let line = task.line;
        let kind = task.kind;
        let parked = task.parked;
        // Residual intra-thread conflict (BB): a store to a line whose
        // older-epoch flush is still in flight waits for the ack.
        if self.l1s[c].mech.forbids_epoch_coalescing() && self.l1s[c].inflight_contains(line) {
            if !parked {
                self.cores[c].store_q.front_mut().unwrap().parked = true;
                // The proactive flush this store now waits on became a
                // critical-path write-back.
                self.stats.reclassify_background_to_critical();
            }
            return; // StoreStep is re-scheduled when the ack arrives
        }
        // A downgrade of this line is being answered: wait until the
        // response leaves (the line will then be S/I and the store
        // re-acquires M through the directory).
        if self.l1s[c].downgrading.contains(&line) {
            return; // StoreStep is re-scheduled when the response is sent
        }

        let state = self.l1s[c].cache.get(line).map(|l| l.state);
        match state {
            Some(CohState::M) | Some(CohState::E) => {
                // Plan with the mechanism.
                let l1 = &mut self.l1s[c];
                let mut view = L1ViewAdapter(&mut l1.cache);
                let act = l1.mech.on_store(&mut view, line, kind);
                let scan = l1.mech.scan_cycles();
                let persist_after = act.persist_line_after;
                self.drain_mech_obs(c);
                if !act.background.is_empty() {
                    self.enqueue_run(
                        c,
                        act.background,
                        FlushClass::Background,
                        JobDone::None,
                        scan,
                    );
                }
                {
                    let t = self.cores[c].store_q.front_mut().unwrap();
                    t.persist_after = persist_after;
                    t.background_after = act.background_after;
                }
                if act.flush_before.is_empty() {
                    self.commit_store(c);
                } else {
                    let t = self.cores[c].store_q.front_mut().unwrap();
                    t.phase = StorePhase::Flushing;
                    self.note_mech_drain(c);
                    self.enqueue_run(
                        c,
                        act.flush_before,
                        FlushClass::Critical,
                        JobDone::StoreReady,
                        scan,
                    );
                }
            }
            _ => {
                let t = self.cores[c].store_q.front_mut().unwrap();
                t.phase = StorePhase::WaitM;
                let from = self.tile_of_core(c);
                self.send_dir(line, Msg::GetM { core: c }, from, false);
            }
        }
    }

    fn commit_store(&mut self, c: usize) {
        let (line, kind, ev, persist_after, background_after) = {
            let t = self.cores[c].store_q.front_mut().unwrap();
            (
                t.line,
                t.kind,
                t.ev,
                t.persist_after,
                std::mem::take(&mut t.background_after),
            )
        };
        self.dbg(
            line,
            &format_args!("l1[{c}] commit store ev={ev} kind={kind:?}"),
        );
        // The line may have been downgraded while a flush ran (we defer
        // forwards for the head task's line, but a different task could
        // have lost it... re-acquire if so).
        let st = self.l1s[c].cache.get(line).map(|l| l.state);
        if !matches!(st, Some(CohState::M) | Some(CohState::E)) {
            let t = self.cores[c].store_q.front_mut().unwrap();
            t.phase = StorePhase::NeedM;
            self.schedule(0, Ev::StoreStep(c));
            return;
        }
        {
            let l1 = &mut self.l1s[c];
            let l = l1.cache.get_mut(line).unwrap();
            l.state = CohState::M;
            l.dirty = true;
            l.covered.push(ev);
            let mut view = L1ViewAdapter(&mut l1.cache);
            l1.mech.on_store_commit(&mut view, line, kind);
            l1.cache.touch(line);
        }
        self.drain_mech_obs(c);
        self.stats.stores += 1;
        if kind.is_release() {
            let now = self.now;
            if let Some(r) = self.recorder.as_mut() {
                r.release_committed(now, ev);
            }
        }
        if !background_after.is_empty() {
            // Delegation: the just-landed store ships to the persist
            // queue immediately (persist-buffer designs).
            self.enqueue_run(
                c,
                background_after,
                FlushClass::Background,
                JobDone::None,
                0,
            );
        }
        self.performed[ev as usize] = true;
        if let Some(waiters) = self.rf_waiters.remove(&ev) {
            for w in waiters {
                if self.cores[w].state == CoreState::WaitRf {
                    self.core_resume(w, 0);
                }
            }
        }
        if persist_after {
            // I3 / strict barrier: flush this line and hold the task
            // until the ack returns.
            let covered = self.l1s[c].cache.take_covered(line);
            self.notify_flush_issued(c, line);
            if !covered.is_empty() {
                self.l1s[c].inflight_inc(line);
            }
            let site = covered
                .first()
                .map(|&e| self.site_of(e))
                .unwrap_or_else(|| self.site_of(ev));
            let t = self.cores[c].store_q.front_mut().unwrap();
            t.phase = StorePhase::WaitAck;
            self.note_mech_drain(c);
            self.enqueue_materialized(
                c,
                VecDeque::from([vec![FlushDesc {
                    line,
                    covered,
                    site,
                }]]),
                FlushClass::Critical,
                JobDone::RmwAck,
                0,
            );
        } else {
            self.finish_store_task(c);
        }
    }

    fn finish_store_task(&mut self, c: usize) {
        let task = self.cores[c].store_q.pop_front().expect("task");
        if task.is_rmw && self.cores[c].state == CoreState::WaitRmw {
            self.core_resume(c, self.cfg.l1_latency + self.cfg.compute_gap);
        }
        // Wake a core stalled on a slot or a same-line drain.
        match self.cores[c].state {
            CoreState::WaitStoreSlot | CoreState::WaitLocalDrain => self.core_resume(c, 0),
            _ => {}
        }
        // End-of-trace drain.
        if self.cores[c].pc >= self.cores[c].ops.len() && self.cores[c].store_q.is_empty() {
            self.schedule(0, Ev::CoreStep(c));
        }
        self.schedule(0, Ev::StoreStep(c));
        // Serve forwards deferred while this task held its line.
        let pending: Vec<(LineAddr, Msg)> = std::mem::take(&mut self.l1s[c].deferred);
        for (line, msg) in pending {
            self.l1_msg(c, line, msg);
        }
    }

    // -- flush sequencer --------------------------------------------------

    /// Materializes an [`EngineRun`] into flush descriptors (taking each
    /// line's buffered writes now) and enqueues it as a job.
    fn enqueue_run(
        &mut self,
        c: usize,
        run: EngineRun,
        class: FlushClass,
        done: JobDone,
        scan: u64,
    ) {
        let mut stages: VecDeque<Vec<FlushDesc>> = VecDeque::new();
        for stage in run.stages {
            let mut descs = Vec::new();
            for line in stage {
                let covered = self.l1s[c].cache.take_covered(line);
                self.notify_flush_issued(c, line);
                if !covered.is_empty() {
                    // The line is considered "being flushed" from hand-off
                    // until the NVM ack (the residual-conflict window).
                    self.l1s[c].inflight_inc(line);
                    let site = covered
                        .first()
                        .map(|&e| self.site_of(e))
                        .unwrap_or(self.cores[c].cur_site);
                    descs.push(FlushDesc {
                        line,
                        covered,
                        site,
                    });
                }
            }
            if !descs.is_empty() {
                stages.push_back(descs);
            }
        }
        self.enqueue_materialized(c, stages, class, done, scan);
    }

    fn enqueue_materialized(
        &mut self,
        c: usize,
        stages: VecDeque<Vec<FlushDesc>>,
        class: FlushClass,
        done: JobDone,
        scan: u64,
    ) {
        let job = Job {
            stages,
            done,
            class,
            scan_charged: scan == 0,
            issued_any: false,
        };
        self.l1s[c].seq.jobs.push_back(job);
        if !self.l1s[c].seq.armed {
            self.l1s[c].seq.armed = true;
            self.schedule(0, Ev::JobStep(c));
        }
        if !self.l1s[c].seq.jobs.back().unwrap().stages.is_empty() {
            self.stats.engine_runs += 1;
        }
    }

    fn notify_flush_issued(&mut self, c: usize, line: LineAddr) {
        let l1 = &mut self.l1s[c];
        let mut view = L1ViewAdapter(&mut l1.cache);
        l1.mech.on_flush_issued(&mut view, line);
        self.drain_mech_obs(c);
    }

    /// Reports the persist-engine FSM state of core `c`'s sequencer
    /// (no-op without a recorder; consecutive duplicates are elided).
    fn engine_obs(&mut self, c: usize, st: EngineState) {
        let now = self.now;
        if let Some(r) = self.recorder.as_mut() {
            r.engine_state(now, c as u32, st);
        }
    }

    fn job_step(&mut self, c: usize) {
        loop {
            if self.l1s[c].seq.jobs.front().is_none() {
                self.engine_obs(c, EngineState::Idle);
                return;
            }
            // Stage barrier / completion: wait for all acks.
            if self.l1s[c].seq.pending > 0 {
                self.engine_obs(c, EngineState::Drain);
                return; // re-armed on ack arrival
            }
            let job = self.l1s[c].seq.jobs.front().unwrap();
            if !job.scan_charged && !job.stages.is_empty() {
                let scan = self.l1s[c].mech.scan_cycles();
                self.l1s[c].seq.jobs.front_mut().unwrap().scan_charged = true;
                if scan > 0 {
                    self.engine_obs(c, EngineState::Scan);
                    self.l1s[c].seq.armed = true;
                    self.schedule(scan, Ev::JobStep(c));
                    return;
                }
            }
            let job = self.l1s[c].seq.jobs.front_mut().unwrap();
            if let Some(mut stage) = job.stages.pop_front() {
                job.issued_any = true;
                let class = job.class;
                self.engine_obs(c, EngineState::Flush);
                // Bounded persist-buffer entries: issue at most
                // `flush_mshrs` flushes at a time; the rest of the stage
                // re-queues and proceeds as acks drain.
                let budget = self
                    .cfg
                    .flush_mshrs
                    .saturating_sub(self.l1s[c].seq.pending as usize);
                if stage.len() > budget {
                    let rest = stage.split_off(budget.max(1));
                    if !rest.is_empty() {
                        self.l1s[c]
                            .seq
                            .jobs
                            .front_mut()
                            .unwrap()
                            .stages
                            .push_front(rest);
                    }
                }
                for desc in stage {
                    self.issue_flush(c, desc, class);
                }
                if self.l1s[c].seq.pending > 0 {
                    return; // wait for acks before the next stage
                }
                continue;
            }
            // Job complete.
            let job = self.l1s[c].seq.jobs.pop_front().unwrap();
            self.job_done(c, job.done);
        }
    }

    fn issue_flush(&mut self, c: usize, desc: FlushDesc, class: FlushClass) {
        self.stats.record_flush(class, desc.covered.len());
        let now = self.now;
        if let Some(r) = self.recorder.as_mut() {
            r.flush_issue(now, c as u32, desc.line, class, desc.site, &desc.covered);
        }
        self.l1s[c].seq.pending += 1;
        let n = self.nvm_of(desc.line);
        let lat = self.noc(self.tile_of_core(c), self.tile_of_nvm(n), true);
        let req = NvmReq {
            line: desc.line,
            covered: desc.covered,
            origin: NvmOrigin::CoreFlush(c),
        };
        self.nvm_submit(n, lat, req);
    }

    fn job_done(&mut self, c: usize, done: JobDone) {
        match done {
            JobDone::None => {}
            JobDone::StoreReady => {
                if let Some(t) = self.cores[c].store_q.front() {
                    if t.phase == StorePhase::Flushing {
                        self.commit_store(c);
                    }
                }
            }
            JobDone::RmwAck => {
                if let Some(t) = self.cores[c].store_q.front() {
                    if t.phase == StorePhase::WaitAck {
                        // I3: the RMW retires here; its synchronous
                        // persist is acked iff nothing is still pending.
                        let acked = self.l1s[c].seq.pending == 0;
                        if let Some(r) = self.recorder.as_mut() {
                            r.audit.rmw_retire(acked);
                        }
                        self.finish_store_task(c);
                    }
                }
            }
            JobDone::Evict { victim } => {
                self.send_putm(c, victim);
                // The stalled fill (if any) proceeds: the inserted line is
                // already resident; re-poke the waiters.
                self.complete_fill_waiters(c, victim);
            }
            JobDone::Downgrade {
                line,
                is_gets,
                was_release,
            } => {
                self.finish_downgrade(c, line, is_gets, was_release);
            }
        }
    }

    // -- NVM -------------------------------------------------------------

    fn nvm_submit(&mut self, n: usize, arrive_delay: u64, req: NvmReq) {
        // Closed-form FIFO queue: service starts when the controller is
        // free, completion after the mode's latency.
        let arrive = self.now + arrive_delay;
        let start = arrive.max(self.nvms[n].next_free);
        self.nvms[n].next_free = start + self.cfg.nvm_service;
        let done = start + self.cfg.nvm_latency();
        self.stats.nvm_requests += 1;
        self.schedule(done - self.now, Ev::NvmDone(n, req));
    }

    fn nvm_done(&mut self, n: usize, req: NvmReq) {
        match req.origin {
            NvmOrigin::CoreFlush(c) => {
                let line = req.line;
                self.record_persist(line, req.covered);
                let lat = self.noc(self.tile_of_nvm(n), self.tile_of_core(c), false);
                self.schedule(lat, Ev::L1Msg(c, line, Msg::DirPersistDone));
            }
            NvmOrigin::DirPersist => {
                let line = req.line;
                self.record_persist(line, req.covered);
                let lat = self.noc(self.tile_of_nvm(n), self.tile_of_bank(line), false);
                self.schedule(lat, Ev::DirMsg(line, Msg::DirPersistDone));
            }
            NvmOrigin::DirRead => {
                let lat = self.noc(self.tile_of_nvm(n), self.tile_of_bank(req.line), true);
                self.schedule(lat, Ev::DirMsg(req.line, Msg::NvmReadDone));
            }
        }
    }

    fn record_persist(&mut self, line: LineAddr, covered: Vec<EventId>) {
        self.dbg(
            line,
            &format_args!("persist stamp={} covered={covered:?}", self.flush_seq),
        );
        let stamp = self.flush_seq;
        self.flush_seq += 1;
        for &e in &covered {
            self.stamps[e as usize] = stamp + 1;
        }
        let now = self.now;
        if let Some(r) = self.recorder.as_mut() {
            r.persisted(now, &covered);
        }
        self.persist_log.push(PersistRecord {
            stamp,
            time: now,
            line,
            covered,
        });
    }

    // -- L1 message handling ----------------------------------------------

    fn l1_msg(&mut self, c: usize, line: LineAddr, msg: Msg) {
        self.dbg(line, &format_args!("l1[{c}] <- {msg:?}"));
        match msg {
            Msg::Data { state } => self.l1_fill(c, line, state),
            Msg::FwdGetS { requester } => self.l1_fwd(c, line, requester, true),
            Msg::FwdGetM { requester } => self.l1_fwd(c, line, requester, false),
            Msg::Inv => {
                // Invalidate a shared copy (possibly already evicted).
                self.l1s[c].cache.remove(line);
                let from = self.tile_of_core(c);
                self.send_dir(line, Msg::InvAck, from, false);
            }
            Msg::PutAck => {
                self.l1s[c].evict_remove(line);
            }
            Msg::DirPersistDone => {
                // A flush ack for this core's sequencer.
                let now = self.now;
                if let Some(r) = self.recorder.as_mut() {
                    r.flush_ack(now, c as u32, line);
                }
                if self.l1s[c].inflight_dec(line) {
                    // The line fully drained; a store or a forward may be
                    // parked on it.
                    self.schedule(0, Ev::StoreStep(c));
                    let parked: Vec<(LineAddr, Msg)> = {
                        let d = &mut self.l1s[c].deferred;
                        let (hit, rest): (Vec<_>, Vec<_>) =
                            std::mem::take(d).into_iter().partition(|(l, _)| *l == line);
                        *d = rest;
                        hit
                    };
                    for (l, m) in parked {
                        self.l1_msg(c, l, m);
                    }
                }
                let seq = &mut self.l1s[c].seq;
                seq.pending = seq.pending.saturating_sub(1);
                if seq.pending == 0 && !seq.armed {
                    seq.armed = true;
                    self.schedule(0, Ev::JobStep(c));
                }
            }
            other => unreachable!("L1 received {other:?}"),
        }
    }

    fn l1_fill(&mut self, c: usize, line: LineAddr, state: CohState) {
        if self.l1s[c].cache.get(line).is_some() {
            // Upgrade grant (S -> M).
            self.l1s[c].cache.get_mut(line).unwrap().state = state;
            self.complete_fill_waiters(c, line);
            return;
        }
        if self.l1s[c].cache.needs_victim(line) {
            let victim = self.l1s[c].cache.victim_of(line);
            let mut act = {
                let l1 = &mut self.l1s[c];
                let mut view = L1ViewAdapter(&mut l1.cache);
                l1.mech.on_evict(&mut view, victim)
            };
            self.drain_mech_obs(c);
            if !act.background.is_empty() {
                // Off-critical-path persist of an only-written victim,
                // through the local sequencer (counts toward pending).
                self.enqueue_run(
                    c,
                    std::mem::take(&mut act.background),
                    FlushClass::Background,
                    JobDone::None,
                    0,
                );
            }
            let (covered, dirty, vstate) = {
                let l1 = &mut self.l1s[c];
                let covered = l1.cache.take_covered(victim);
                let vic = l1.cache.remove(victim).expect("victim resident");
                (covered, vic.dirty, vic.state)
            };
            self.notify_flush_issued(c, victim);
            let written = dirty || !covered.is_empty();
            self.stats.evictions += u64::from(written);
            self.l1s[c].evict_insert(
                victim,
                EvictEntry {
                    covered,
                    dirty,
                    persist: act.persist_at_dir,
                    sent: false,
                },
            );
            self.l1s[c].cache.insert(line, state);
            let silent = matches!(vstate, CohState::S) || !written;
            if !act.flush_before.is_empty() {
                // I1: the triggering fill waits for earlier persists.
                let scan = self.l1s[c].mech.scan_cycles();
                self.enqueue_run(
                    c,
                    act.flush_before,
                    FlushClass::Critical,
                    JobDone::Evict { victim },
                    scan,
                );
                return; // waiters complete when the job finishes
            }
            if silent {
                self.l1s[c].evict_remove(victim);
            } else {
                self.send_putm(c, victim);
            }
        } else {
            self.l1s[c].cache.insert(line, state);
        }
        self.complete_fill_waiters(c, line);
    }

    fn send_putm(&mut self, c: usize, victim: LineAddr) {
        let Some(entry) = self.l1s[c].evict_get_mut(victim) else {
            return;
        };
        if entry.sent {
            return;
        }
        entry.sent = true;
        let covered = std::mem::take(&mut entry.covered);
        let persist = entry.persist;
        let msg = Msg::PutM {
            core: c,
            covered,
            dirty: entry.dirty,
            persist,
        };
        if persist {
            // I1: the released victim's write-back leaves the L1; every
            // earlier persist of this core must have been acked.
            let pending = self.l1s[c].seq.pending;
            if let Some(r) = self.recorder.as_mut() {
                r.audit.release_writeback(pending);
            }
        }
        let from = self.tile_of_core(c);
        self.send_dir(victim, msg, from, true);
    }

    /// Wakes whatever was waiting on a fill of `line` (or on the
    /// eviction that the fill of another line triggered).
    fn complete_fill_waiters(&mut self, c: usize, _line: LineAddr) {
        if let CoreState::WaitLoad { line: l } = self.cores[c].state {
            if self.l1s[c].cache.get(l).is_some() {
                self.l1s[c].cache.touch(l);
                self.cores[c].pc += 1;
                self.stats.ops += 1;
                self.core_resume(c, self.cfg.l1_latency + self.cfg.compute_gap);
            }
        }
        if let Some(t) = self.cores[c].store_q.front_mut() {
            if t.phase == StorePhase::WaitM && self.l1s[c].cache.get(t.line).is_some() {
                let st = self.l1s[c].cache.get(t.line).unwrap().state;
                if matches!(st, CohState::M | CohState::E) {
                    t.phase = StorePhase::NeedM;
                    self.schedule(0, Ev::StoreStep(c));
                }
            }
        }
    }

    fn l1_fwd(&mut self, c: usize, line: LineAddr, requester: usize, is_gets: bool) {
        // Evicted (or silently dropped) line: stale response; the
        // directory pairs it with the PutM or falls back to the LLC.
        if let Some(entry) = self.l1s[c].evict_get(line) {
            let putm_coming = entry.sent || entry.dirty || !entry.covered.is_empty();
            let resp = DownRespData {
                covered: Vec::new(),
                dirty: false,
                persist_at_dir: false,
                stale: true,
                putm_coming,
                kept_shared: false,
            };
            let from = self.tile_of_core(c);
            self.send_dir(line, Msg::DownResp(resp), from, false);
            return;
        }
        // A flush of this very line is still in flight: the response
        // (which implies durability to the requester) must wait for the
        // ack. Park the forward; it is re-served when the ack arrives.
        if self.l1s[c].inflight_contains(line) {
            let msg = if is_gets {
                Msg::FwdGetS { requester }
            } else {
                Msg::FwdGetM { requester }
            };
            self.l1s[c].deferred.push((line, msg));
            return;
        }
        let resident = self.l1s[c].cache.get(line).map(|l| l.state);
        if !matches!(resident, Some(CohState::M) | Some(CohState::E)) {
            // Dropped silently while the forward was in flight.
            let resp = DownRespData {
                covered: Vec::new(),
                dirty: false,
                persist_at_dir: false,
                stale: true,
                putm_coming: false,
                kept_shared: false,
            };
            let from = self.tile_of_core(c);
            self.send_dir(line, Msg::DownResp(resp), from, false);
            return;
        }
        // A store mid-flight on this line finishes first (prevents
        // losing M between plan and commit).
        if let Some(t) = self.cores[c].store_q.front() {
            if t.line == line && matches!(t.phase, StorePhase::Flushing | StorePhase::WaitAck) {
                let msg = if is_gets {
                    Msg::FwdGetS { requester }
                } else {
                    Msg::FwdGetM { requester }
                };
                self.l1s[c].deferred.push((line, msg));
                return;
            }
        }
        self.stats.downgrades += 1;
        let meta = self.l1s[c].cache.meta(line);
        if meta.release {
            // Coherence detected a release→acquire synchronisation: the
            // requester is acquiring a line another thread released.
            let now = self.now;
            if let Some(r) = self.recorder.as_mut() {
                r.sync_detected(now, c as u32, line, requester as u32);
            }
        }
        let was_release = meta.release && meta.nvm_dirty;
        let mut act = {
            let l1 = &mut self.l1s[c];
            let mut view = L1ViewAdapter(&mut l1.cache);
            l1.mech.on_downgrade(&mut view, line)
        };
        self.drain_mech_obs(c);
        if !act.background.is_empty() {
            self.enqueue_run(
                c,
                std::mem::take(&mut act.background),
                FlushClass::Background,
                JobDone::None,
                0,
            );
        }
        if act.flush_before.is_empty() {
            let persist = act.persist_at_dir;
            self.finish_downgrade_with(c, line, is_gets, persist, was_release);
        } else {
            self.l1s[c].downgrading.push(line);
            let scan = self.l1s[c].mech.scan_cycles();
            self.enqueue_run(
                c,
                act.flush_before,
                FlushClass::Sync,
                JobDone::Downgrade {
                    line,
                    is_gets,
                    was_release,
                },
                scan,
            );
        }
    }

    fn finish_downgrade(&mut self, c: usize, line: LineAddr, is_gets: bool, was_release: bool) {
        // Reached after an I2 engine run: the line itself already
        // persisted locally, so the directory need not persist again.
        self.finish_downgrade_with(c, line, is_gets, false, was_release);
    }

    fn finish_downgrade_with(
        &mut self,
        c: usize,
        line: LineAddr,
        is_gets: bool,
        persist_at_dir: bool,
        was_release: bool,
    ) {
        let dg = &mut self.l1s[c].downgrading;
        if let Some(i) = dg.iter().position(|&l| l == line) {
            dg.swap_remove(i);
        }
        self.schedule(0, Ev::StoreStep(c));
        let covered = self.l1s[c].cache.take_covered(line);
        if was_release {
            // I2: the response for a dirty released line goes out; the
            // release must have persisted (locally or, for write-back
            // designs, at the directory) and nothing may still be
            // pending in this core's sequencer.
            let pending = self.l1s[c].seq.pending;
            let line_persisted = covered.is_empty() || persist_at_dir;
            if let Some(r) = self.recorder.as_mut() {
                r.audit.release_downgrade(pending, line_persisted);
            }
        }
        debug_assert!(
            covered.is_empty() || persist_at_dir || !self.l1s[c].mech.dir_persists_writebacks(),
            "unpersisted writes would ride a response marked durable"
        );
        self.notify_flush_issued(c, line);
        let dirty = self.l1s[c]
            .cache
            .get(line)
            .map(|l| l.dirty)
            .unwrap_or(false);
        if is_gets {
            if let Some(l) = self.l1s[c].cache.get_mut(line) {
                l.state = CohState::S;
                l.dirty = false;
            }
        } else {
            self.l1s[c].cache.remove(line);
        }
        let resp = DownRespData {
            covered,
            dirty,
            persist_at_dir,
            stale: false,
            putm_coming: false,
            kept_shared: is_gets,
        };
        let from = self.tile_of_core(c);
        self.send_dir(line, Msg::DownResp(resp), from, true);
    }

    // -- directory ---------------------------------------------------------

    fn dbg(&self, line: LineAddr, what: &std::fmt::Arguments<'_>) {
        if self.cfg.debug_line == Some(line) {
            eprintln!("[{}] line {:#x}: {}", self.now, line, what);
        }
    }

    fn dir_msg(&mut self, line: LineAddr, msg: Msg) {
        self.dbg(line, &format_args!("dir <- {msg:?}"));
        let di = self.dir_id(line);
        let entry = &mut self.dir[di];
        let busy = entry.busy.is_some();
        match (&msg, busy) {
            (Msg::GetS { .. } | Msg::GetM { .. }, true) => {
                entry.queue.push_back(msg);
            }
            (Msg::PutM { .. }, true) => self.dir_putm_busy(line, msg),
            (Msg::DownResp(_), _) => self.dir_downresp(line, msg),
            (Msg::InvAck, _) => self.dir_invack(line),
            (Msg::NvmReadDone, _) => self.dir_fetch_done(line),
            (Msg::DirPersistDone, _) => self.dir_persist_done(line),
            (Msg::GetS { core }, false) => self.dir_gets(line, *core),
            (Msg::GetM { core }, false) => self.dir_getm(line, *core),
            (Msg::PutM { .. }, false) => self.dir_putm_idle(line, msg),
            other => unreachable!("directory received {other:?}"),
        }
    }

    fn dir_pump(&mut self, line: LineAddr) {
        let Some(&di) = self.dir_ids.get(&line) else {
            return;
        };
        let entry = &mut self.dir[di as usize];
        if entry.busy.is_some() {
            return;
        }
        if let Some(msg) = entry.queue.pop_front() {
            self.schedule(1, Ev::DirMsg(line, msg));
        }
    }

    fn grant(&mut self, line: LineAddr, requester: usize, state: CohState) {
        let src = self.tile_of_bank(line);
        let dst = self.tile_of_core(requester);
        let lat = self.cfg.llc_latency + self.noc(src, dst, true);
        let d = self.ordered_delay(src, dst, lat);
        self.schedule(d, Ev::L1Msg(requester, line, Msg::Data { state }));
    }

    fn dir_fetch_or(&mut self, line: LineAddr, requester: usize, is_getm: bool) -> bool {
        let di = self.dir_id(line);
        let entry = &mut self.dir[di];
        if entry.in_llc {
            return false;
        }
        entry.busy = Some(Trans {
            requester,
            is_getm,
            phase: TransPhase::NvmFetch,
            putm_stash: None,
            putack_to: None,
        });
        let n = self.nvm_of(line);
        let lat =
            self.noc(self.tile_of_bank(line), self.tile_of_nvm(n), false) + self.cfg.llc_latency;
        self.nvm_submit(
            n,
            lat,
            NvmReq {
                line,
                covered: Vec::new(),
                origin: NvmOrigin::DirRead,
            },
        );
        true
    }

    fn dir_gets(&mut self, line: LineAddr, core: usize) {
        let di = self.dir_id(line);
        if let DirState::Shared(s) = &mut self.dir[di].state {
            if !s.contains(&core) {
                s.push(core);
            }
            self.grant(line, core, CohState::S);
            self.dir_pump(line);
            return;
        }
        match self.dir[di].state {
            DirState::Uncached => {
                if self.dir_fetch_or(line, core, false) {
                    return;
                }
                self.dir[di].state = DirState::Owned(core);
                self.grant(line, core, CohState::E);
                self.dir_pump(line);
            }
            DirState::Owned(o) => {
                self.dir[di].busy = Some(Trans {
                    requester: core,
                    is_getm: false,
                    phase: TransPhase::AwaitDownResp,
                    putm_stash: None,
                    putack_to: None,
                });
                let from = self.tile_of_bank(line);
                self.send_l1(o, line, Msg::FwdGetS { requester: core }, from, false);
            }
            DirState::Shared(_) => unreachable!("handled above"),
        }
    }

    fn dir_getm(&mut self, line: LineAddr, core: usize) {
        let di = self.dir_id(line);
        match &self.dir[di].state {
            DirState::Uncached => {
                if self.dir_fetch_or(line, core, true) {
                    return;
                }
                self.dir[di].state = DirState::Owned(core);
                self.grant(line, core, CohState::M);
                self.dir_pump(line);
            }
            DirState::Shared(s) => {
                let others: Vec<usize> = s.iter().copied().filter(|&x| x != core).collect();
                if others.is_empty() {
                    self.dir[di].state = DirState::Owned(core);
                    self.grant(line, core, CohState::M);
                    self.dir_pump(line);
                } else {
                    let n = others.len();
                    self.dir[di].busy = Some(Trans {
                        requester: core,
                        is_getm: true,
                        phase: TransPhase::AwaitInvAcks(n),
                        putm_stash: None,
                        putack_to: None,
                    });
                    let from = self.tile_of_bank(line);
                    for o in others {
                        self.send_l1(o, line, Msg::Inv, from, false);
                    }
                }
            }
            DirState::Owned(o) if *o == core => {
                // The owner lost the line silently and re-requested; treat
                // as a fresh grant.
                self.grant(line, core, CohState::M);
                self.dir_pump(line);
            }
            &DirState::Owned(o) => {
                self.dir[di].busy = Some(Trans {
                    requester: core,
                    is_getm: true,
                    phase: TransPhase::AwaitDownResp,
                    putm_stash: None,
                    putack_to: None,
                });
                let from = self.tile_of_bank(line);
                self.send_l1(o, line, Msg::FwdGetM { requester: core }, from, false);
            }
        }
    }

    fn dir_invack(&mut self, line: LineAddr) {
        let di = self.dir_id(line);
        let entry = &mut self.dir[di];
        let Some(t) = entry.busy.as_mut() else {
            return;
        };
        if let TransPhase::AwaitInvAcks(n) = &mut t.phase {
            *n -= 1;
            if *n == 0 {
                let req = t.requester;
                entry.state = DirState::Owned(req);
                entry.busy = None;
                self.grant(line, req, CohState::M);
                self.dir_pump(line);
            }
        }
    }

    fn dir_fetch_done(&mut self, line: LineAddr) {
        let di = self.dir_id(line);
        let entry = &mut self.dir[di];
        entry.in_llc = true;
        let t = entry.busy.take().expect("fetch transaction");
        entry.state = DirState::Owned(t.requester);
        let state = if t.is_getm { CohState::M } else { CohState::E };
        self.grant(line, t.requester, state);
        self.dir_pump(line);
    }

    fn dir_downresp(&mut self, line: LineAddr, msg: Msg) {
        let Msg::DownResp(resp) = msg else {
            unreachable!()
        };
        let di = self.dir_id(line);
        let entry = &mut self.dir[di];
        let Some(t) = entry.busy.as_mut() else {
            // A response for a transaction completed via a stashed PutM.
            return;
        };
        if t.phase != TransPhase::AwaitDownResp {
            return;
        }
        if resp.stale {
            if let Some((covered, dirty, persist)) = t.putm_stash.take() {
                self.dir_complete_owner_data(line, covered, dirty, persist, false);
            } else if resp.putm_coming {
                t.phase = TransPhase::AwaitStalePutm { kept_shared: false };
            } else {
                // Clean silent drop: LLC data is current.
                self.dir_complete_owner_data(line, Vec::new(), false, false, false);
            }
        } else {
            let DownRespData {
                covered,
                dirty,
                persist_at_dir,
                kept_shared,
                ..
            } = resp;
            self.dir_complete_owner_data(line, covered, dirty, persist_at_dir, kept_shared);
        }
    }

    fn dir_putm_busy(&mut self, line: LineAddr, msg: Msg) {
        let Msg::PutM {
            core,
            covered,
            dirty,
            persist,
        } = msg
        else {
            unreachable!()
        };
        let di = self.dir_id(line);
        let entry = &mut self.dir[di];
        let is_owner = entry.state == DirState::Owned(core);
        let Some(t) = entry.busy.as_mut() else {
            unreachable!()
        };
        if is_owner && matches!(t.phase, TransPhase::AwaitDownResp) {
            t.putm_stash = Some((covered, dirty, persist));
            // PutAck once the transaction completes (the eviction buffer
            // entry can be freed immediately — data is with the dir now).
            let from = self.tile_of_bank(line);
            self.send_l1(core, line, Msg::PutAck, from, false);
        } else if is_owner && matches!(t.phase, TransPhase::AwaitStalePutm { .. }) {
            let TransPhase::AwaitStalePutm { kept_shared } = t.phase else {
                unreachable!()
            };
            let from = self.tile_of_bank(line);
            self.send_l1(core, line, Msg::PutAck, from, false);
            self.dir_complete_owner_data(line, covered, dirty, persist, kept_shared);
        } else {
            // Unrelated transaction in flight: queue the PutM.
            entry.queue.push_back(Msg::PutM {
                core,
                covered,
                dirty,
                persist,
            });
        }
    }

    /// Completes an owner-data transaction: optionally persists the
    /// write-back (I4), updates the LLC, grants, and unbusies.
    fn dir_complete_owner_data(
        &mut self,
        line: LineAddr,
        covered: Vec<EventId>,
        dirty: bool,
        persist: bool,
        owner_kept_shared: bool,
    ) {
        // I4: a data write-back reached the directory; if it still
        // carries unpersisted writes, the directory must persist them
        // before granting. (Skipped for mechanisms whose directory does
        // not persist write-backs at all — the volatile baseline.)
        if self.recorder.is_some() && self.l1s[0].mech.dir_persists_writebacks() {
            let carries = !covered.is_empty();
            if let Some(r) = self.recorder.as_mut() {
                r.audit.dir_writeback(carries, persist);
            }
        }
        let di = self.dir_id(line);
        let entry = &mut self.dir[di];
        if dirty || !covered.is_empty() {
            entry.in_llc = true;
        }
        let t = entry.busy.as_mut().expect("transaction");
        if persist && !covered.is_empty() {
            t.phase = TransPhase::AwaitPersist;
            t.putm_stash = Some((Vec::new(), dirty, false));
            // Remember how to finish after the persist.
            let is_getm = t.is_getm;
            let req = t.requester;
            let n = self.nvm_of(line);
            let lat = self.noc(self.tile_of_bank(line), self.tile_of_nvm(n), true);
            self.nvm_submit(
                n,
                lat,
                NvmReq {
                    line,
                    covered,
                    origin: NvmOrigin::DirPersist,
                },
            );
            // Stash completion context in the transaction.
            let entry = &mut self.dir[di];
            let t = entry.busy.as_mut().unwrap();
            t.is_getm = is_getm;
            t.requester = req;
            // owner_kept_shared folded into state update at completion:
            t.putack_to = None;
            // Record owner_kept_shared via state now (owner already
            // downgraded itself).
            if owner_kept_shared {
                if let DirState::Owned(o) = entry.state {
                    entry.state = DirState::Shared(vec![o]);
                }
            } else {
                entry.state = DirState::Uncached;
            }
            return;
        }
        // No persist needed: grant immediately.
        let (req, is_getm) = (t.requester, t.is_getm);
        let prev_owner = if let DirState::Owned(o) = entry.state {
            Some(o)
        } else {
            None
        };
        entry.busy = None;
        if is_getm {
            entry.state = DirState::Owned(req);
            self.grant(line, req, CohState::M);
        } else {
            let mut sharers = Vec::new();
            if owner_kept_shared {
                if let Some(o) = prev_owner {
                    sharers.push(o);
                }
            }
            sharers.push(req);
            entry.state = DirState::Shared(sharers);
            self.grant(line, req, CohState::S);
        }
        self.dir_pump(line);
    }

    fn dir_persist_done(&mut self, line: LineAddr) {
        let di = self.dir_id(line);
        let entry = &mut self.dir[di];
        let Some(t) = entry.busy.as_mut() else {
            return;
        };
        match t.phase {
            TransPhase::AwaitPersist => {
                let (req, is_getm) = (t.requester, t.is_getm);
                // Both branches below overwrite `state`; take it rather
                // than clone the sharer list.
                let kept = std::mem::replace(&mut entry.state, DirState::Uncached);
                entry.busy = None;
                if is_getm {
                    entry.state = DirState::Owned(req);
                    self.grant(line, req, CohState::M);
                } else {
                    let mut sharers = match kept {
                        DirState::Shared(s) => s,
                        _ => Vec::new(),
                    };
                    if !sharers.contains(&req) {
                        sharers.push(req);
                    }
                    entry.state = DirState::Shared(sharers);
                    self.grant(line, req, CohState::S);
                }
                self.dir_pump(line);
            }
            TransPhase::AwaitPutPersist => {
                let to = t.putack_to;
                entry.busy = None;
                entry.state = DirState::Uncached;
                if let Some(o) = to {
                    let from = self.tile_of_bank(line);
                    self.send_l1(o, line, Msg::PutAck, from, false);
                }
                self.dir_pump(line);
            }
            _ => {}
        }
    }

    fn dir_putm_idle(&mut self, line: LineAddr, msg: Msg) {
        let Msg::PutM {
            core,
            covered,
            dirty,
            persist,
        } = msg
        else {
            unreachable!()
        };
        let di = self.dir_id(line);
        if self.dir[di].state != DirState::Owned(core) {
            // Late PutM after the line moved on; data is superseded.
            let from = self.tile_of_bank(line);
            self.send_l1(core, line, Msg::PutAck, from, false);
            return;
        }
        // I4, same enforcement point as `dir_complete_owner_data`.
        if self.recorder.is_some() && self.l1s[0].mech.dir_persists_writebacks() {
            let carries = !covered.is_empty();
            if let Some(r) = self.recorder.as_mut() {
                r.audit.dir_writeback(carries, persist);
            }
        }
        let entry = &mut self.dir[di];
        if dirty || !covered.is_empty() {
            entry.in_llc = true;
        }
        if persist && !covered.is_empty() {
            entry.busy = Some(Trans {
                requester: core,
                is_getm: false,
                phase: TransPhase::AwaitPutPersist,
                putm_stash: None,
                putack_to: Some(core),
            });
            let n = self.nvm_of(line);
            let lat = self.noc(self.tile_of_bank(line), self.tile_of_nvm(n), true);
            self.nvm_submit(
                n,
                lat,
                NvmReq {
                    line,
                    covered,
                    origin: NvmOrigin::DirPersist,
                },
            );
        } else {
            entry.state = DirState::Uncached;
            let from = self.tile_of_bank(line);
            self.send_l1(core, line, Msg::PutAck, from, false);
            self.dir_pump(line);
        }
    }
}
