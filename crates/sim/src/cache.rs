//! Set-associative L1 data cache array with per-line coherence state,
//! persistency metadata, and covered-write tracking.
//!
//! The cache maintains an incremental index of its `nvm_dirty` lines —
//! a per-set counter plus a set-level bitmap — so persist-engine scans
//! visit only sets that actually hold dirty lines instead of walking
//! all 64 sets × 8 ways per plan. The index is updated at the three
//! places metadata can change (`set_line_meta`, `take_covered`,
//! `remove`); the visit order (sets ascending, ways in residence
//! order) is exactly the order a full `lines()` walk reports, which
//! engine planning depends on for deterministic stage-0 ordering.

use lrp_core::mech::{L1View, LineMeta};
use lrp_model::{EventId, LineAddr};

/// MESI stable states of an L1 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohState {
    /// Shared (read-only).
    S,
    /// Exclusive (clean, sole copy).
    E,
    /// Modified (dirty, sole copy).
    M,
}

/// One resident L1 line.
///
/// Persistency metadata (nvm-dirty / release / min-epoch) is *not*
/// stored here: it lives in the cache's packed SoA columns, slot-
/// indexed parallel to the flat tag table, so persist-engine scans
/// read contiguous words instead of striding through these structs.
/// Read it with [`L1Cache::meta`], write it with
/// [`L1Cache::set_line_meta`].
#[derive(Debug, Clone)]
pub struct L1Line {
    /// The line address.
    pub line: LineAddr,
    /// Coherence state.
    pub state: CohState,
    /// Write events buffered since the line was last flushed.
    pub covered: Vec<EventId>,
    /// Written since fill (data differs from the LLC copy).
    pub dirty: bool,
    /// LRU timestamp.
    pub lru: u64,
}

/// Marks an unoccupied way in the flat tag table. Line addresses come
/// from `line_of` on real word addresses, which never reach the top of
/// the u64 range.
const EMPTY_TAG: LineAddr = LineAddr::MAX;

/// A set-associative L1.
///
/// Lookups are served by a flat `sets * ways` tag table (one
/// contiguous, mostly-host-cache-resident array) that mirrors the
/// residence order of `sets`: `tags[s * ways + w] ==
/// sets[s][w].line` for occupied ways, [`EMPTY_TAG`] past the end.
/// The full `L1Line` structs are only touched once the way is known.
#[derive(Debug)]
pub struct L1Cache {
    sets: Vec<Vec<L1Line>>,
    tags: Vec<LineAddr>,
    /// SoA persistency-metadata columns, slot-indexed parallel to
    /// `tags` (`slot = s * ways + w`): one `nvm_dirty` bit per slot.
    dirty_bits: Vec<u64>,
    /// One `release` bit per slot.
    release_bits: Vec<u64>,
    /// Per-slot `min_epoch`.
    min_epoch: Vec<u16>,
    ways: usize,
    /// `nsets - 1` when the set count is a power of two (the common
    /// 64-set geometry), else `usize::MAX` to select the modulo path.
    set_mask: usize,
    clock: u64,
    /// Number of `nvm_dirty` lines per set.
    dirty_in_set: Vec<u32>,
    /// One bit per set: `dirty_in_set[s] > 0`.
    dirty_set_bits: Vec<u64>,
}

impl L1Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        L1Cache {
            sets: (0..sets).map(|_| Vec::new()).collect(),
            tags: vec![EMPTY_TAG; sets * ways],
            dirty_bits: vec![0; (sets * ways).div_ceil(64)],
            release_bits: vec![0; (sets * ways).div_ceil(64)],
            min_epoch: vec![0; sets * ways],
            ways,
            set_mask: if sets.is_power_of_two() {
                sets - 1
            } else {
                usize::MAX
            },
            clock: 0,
            dirty_in_set: vec![0; sets],
            dirty_set_bits: vec![0; sets.div_ceil(64)],
        }
    }

    #[inline]
    fn meta_at(&self, slot: usize) -> LineMeta {
        let (w, b) = (slot / 64, 1u64 << (slot % 64));
        LineMeta {
            nvm_dirty: self.dirty_bits[w] & b != 0,
            release: self.release_bits[w] & b != 0,
            min_epoch: self.min_epoch[slot],
        }
    }

    #[inline]
    fn write_meta_at(&mut self, slot: usize, meta: LineMeta) {
        let (w, b) = (slot / 64, 1u64 << (slot % 64));
        if meta.nvm_dirty {
            self.dirty_bits[w] |= b;
        } else {
            self.dirty_bits[w] &= !b;
        }
        if meta.release {
            self.release_bits[w] |= b;
        } else {
            self.release_bits[w] &= !b;
        }
        self.min_epoch[slot] = meta.min_epoch;
    }

    fn set_of(&self, line: LineAddr) -> usize {
        if self.set_mask != usize::MAX {
            (line as usize) & self.set_mask
        } else {
            (line as usize) % self.sets.len()
        }
    }

    #[inline]
    fn way_of(&self, s: usize, line: LineAddr) -> Option<usize> {
        let base = s * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == line)
    }

    #[inline]
    fn note_dirty_change(&mut self, s: usize, was: bool, now: bool) {
        if was == now {
            return;
        }
        if now {
            self.dirty_in_set[s] += 1;
            self.dirty_set_bits[s / 64] |= 1 << (s % 64);
        } else {
            self.dirty_in_set[s] -= 1;
            if self.dirty_in_set[s] == 0 {
                self.dirty_set_bits[s / 64] &= !(1 << (s % 64));
            }
        }
    }

    /// Immutable lookup.
    pub fn get(&self, line: LineAddr) -> Option<&L1Line> {
        let s = self.set_of(line);
        self.way_of(s, line).map(|w| &self.sets[s][w])
    }

    /// Mutable lookup. Do not change `meta.nvm_dirty` through the
    /// returned reference — use [`L1Cache::set_line_meta`], which keeps
    /// the dirty-set index consistent.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut L1Line> {
        let s = self.set_of(line);
        self.way_of(s, line).map(|w| &mut self.sets[s][w])
    }

    /// A resident line's persistency metadata (default when absent).
    pub fn meta(&self, line: LineAddr) -> LineMeta {
        let s = self.set_of(line);
        self.way_of(s, line)
            .map(|w| self.meta_at(s * self.ways + w))
            .unwrap_or_default()
    }

    /// Overwrites a resident line's persistency metadata, maintaining
    /// the dirty-set index.
    pub fn set_line_meta(&mut self, line: LineAddr, meta: LineMeta) {
        let s = self.set_of(line);
        let Some(w) = self.way_of(s, line) else {
            return;
        };
        let slot = s * self.ways + w;
        let was = self.dirty_bits[slot / 64] & (1 << (slot % 64)) != 0;
        self.write_meta_at(slot, meta);
        self.note_dirty_change(s, was, meta.nvm_dirty);
    }

    /// Touches the line for LRU.
    pub fn touch(&mut self, line: LineAddr) {
        self.clock += 1;
        let c = self.clock;
        if let Some(l) = self.get_mut(line) {
            l.lru = c;
        }
    }

    /// Read fast path: one tag scan that tests residency and refreshes
    /// LRU in the same pass (equivalent to `get` + `touch` on a hit).
    pub fn read_hit(&mut self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        let Some(w) = self.way_of(s, line) else {
            return false;
        };
        let l = &mut self.sets[s][w];
        if matches!(l.state, CohState::S | CohState::E | CohState::M) {
            self.clock += 1;
            l.lru = self.clock;
            true
        } else {
            false
        }
    }

    /// True if inserting `line` requires evicting a resident line.
    pub fn needs_victim(&self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        self.way_of(s, line).is_none() && self.sets[s].len() >= self.ways
    }

    /// The LRU victim of `line`'s set (must be full).
    pub fn victim_of(&self, line: LineAddr) -> LineAddr {
        let set = &self.sets[self.set_of(line)];
        set.iter()
            .min_by_key(|l| l.lru)
            .expect("set not empty")
            .line
    }

    /// Removes and returns a resident line.
    pub fn remove(&mut self, line: LineAddr) -> Option<L1Line> {
        let s = self.set_of(line);
        let w = self.way_of(s, line)?;
        let base = s * self.ways;
        let last = self.sets[s].len() - 1;
        self.tags[base + w] = self.tags[base + last];
        self.tags[base + last] = EMPTY_TAG;
        // The metadata columns mirror the tags' swap_remove: the last
        // slot's metadata moves into the vacated way, the last slot
        // clears.
        let was_dirty = self.meta_at(base + w).nvm_dirty;
        let moved = self.meta_at(base + last);
        self.write_meta_at(base + w, moved);
        self.write_meta_at(base + last, LineMeta::default());
        let l = self.sets[s].swap_remove(w);
        if was_dirty {
            self.note_dirty_change(s, true, false);
        }
        Some(l)
    }

    /// Inserts a line (the caller has made room).
    pub fn insert(&mut self, line: LineAddr, state: CohState) {
        assert!(self.get(line).is_none(), "line {line:#x} already resident");
        let s = self.set_of(line);
        let len = self.sets[s].len();
        assert!(len < self.ways, "no room in set");
        self.clock += 1;
        let lru = self.clock;
        self.tags[s * self.ways + len] = line;
        self.write_meta_at(s * self.ways + len, LineMeta::default());
        self.sets[s].push(L1Line {
            line,
            state,
            covered: Vec::new(),
            dirty: false,
            lru,
        });
    }

    /// Hands the line's buffered writes to the persist subsystem: drains
    /// `covered` and clears the persistency metadata (the data is on its
    /// way to NVM; later writes re-dirty the line with a fresh epoch).
    pub fn take_covered(&mut self, line: LineAddr) -> Vec<EventId> {
        let s = self.set_of(line);
        if let Some(w) = self.way_of(s, line) {
            let slot = s * self.ways + w;
            let (wd, b) = (slot / 64, 1u64 << (slot % 64));
            let was = self.dirty_bits[wd] & b != 0;
            self.dirty_bits[wd] &= !b;
            self.release_bits[wd] &= !b;
            let covered = std::mem::take(&mut self.sets[s][w].covered);
            self.note_dirty_change(s, was, false);
            covered
        } else {
            Vec::new()
        }
    }

    /// All resident lines (for statistics).
    pub fn lines(&self) -> impl Iterator<Item = &L1Line> {
        self.sets.iter().flatten()
    }

    /// Visits every `nvm_dirty` line in `lines()` order, touching only
    /// sets the dirty index marks. The scan reads nothing but flat
    /// columns — set bitmap, dirty-bit words, tags, and (for hits) the
    /// release/epoch columns — never the `L1Line` structs, so a persist
    /// plan streams contiguous words instead of striding through the
    /// AoS storage.
    pub fn for_each_nvm_dirty(&self, f: &mut dyn FnMut(LineAddr, LineMeta)) {
        for (w, &word) in self.dirty_set_bits.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = s * self.ways;
                // Walk the set's slots in residence order via the
                // dirty-bit column (the slot range may straddle a word
                // boundary for unusual geometries).
                let mut off = 0;
                while off < self.ways {
                    let bit = (base + off) % 64;
                    let avail = (64 - bit).min(self.ways - off);
                    let mask = if avail == 64 {
                        u64::MAX
                    } else {
                        (1u64 << avail) - 1
                    };
                    let mut dirty = (self.dirty_bits[(base + off) / 64] >> bit) & mask;
                    while dirty != 0 {
                        let slot = base + off + dirty.trailing_zeros() as usize;
                        dirty &= dirty - 1;
                        f(self.tags[slot], self.meta_at(slot));
                    }
                    off += avail;
                }
            }
        }
    }
}

/// [`L1View`] adapter handed to persistency mechanisms.
pub struct L1ViewAdapter<'a>(pub &'a mut L1Cache);

impl L1View for L1ViewAdapter<'_> {
    fn nvm_dirty_lines(&self) -> Vec<(LineAddr, LineMeta)> {
        let mut v = Vec::new();
        self.0
            .for_each_nvm_dirty(&mut |line, meta| v.push((line, meta)));
        v
    }

    fn for_each_nvm_dirty(&self, f: &mut dyn FnMut(LineAddr, LineMeta)) {
        self.0.for_each_nvm_dirty(f);
    }

    fn meta(&self, line: LineAddr) -> LineMeta {
        self.0.meta(line)
    }

    fn set_meta(&mut self, line: LineAddr, meta: LineMeta) {
        self.0.set_line_meta(line, meta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirty_meta() -> LineMeta {
        LineMeta {
            nvm_dirty: true,
            release: false,
            min_epoch: 0,
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut c = L1Cache::new(4, 2);
        c.insert(0x40, CohState::E);
        assert_eq!(c.get(0x40).unwrap().state, CohState::E);
        assert!(c.get(0x44).is_none());
        let l = c.remove(0x40).unwrap();
        assert_eq!(l.line, 0x40);
        assert!(c.get(0x40).is_none());
    }

    #[test]
    fn victim_is_lru() {
        let mut c = L1Cache::new(1, 2);
        c.insert(1, CohState::S);
        c.insert(2, CohState::S);
        c.touch(1); // 2 becomes LRU
        assert!(c.needs_victim(3));
        assert_eq!(c.victim_of(3), 2);
        assert!(!c.needs_victim(1), "resident line needs no victim");
    }

    #[test]
    fn take_covered_clears_meta() {
        let mut c = L1Cache::new(1, 2);
        c.insert(8, CohState::M);
        c.get_mut(8).unwrap().covered = vec![1, 2, 3];
        c.set_line_meta(
            8,
            LineMeta {
                nvm_dirty: true,
                release: true,
                min_epoch: 0,
            },
        );
        assert_eq!(c.take_covered(8), vec![1, 2, 3]);
        let m = c.meta(8);
        assert!(!m.nvm_dirty && !m.release);
        assert!(c.take_covered(8).is_empty(), "second take is empty");
    }

    #[test]
    fn view_adapter_reports_dirty_lines() {
        let mut c = L1Cache::new(2, 2);
        c.insert(1, CohState::M);
        c.insert(2, CohState::M);
        c.set_line_meta(1, dirty_meta());
        let mut view = L1ViewAdapter(&mut c);
        use lrp_core::mech::L1View as _;
        assert_eq!(view.nvm_dirty_lines().len(), 1);
        let mut m = view.meta(2);
        m.nvm_dirty = true;
        view.set_meta(2, m);
        assert_eq!(view.nvm_dirty_lines().len(), 2);
    }

    #[test]
    fn sets_isolate_conflicts() {
        let mut c = L1Cache::new(2, 1);
        c.insert(0, CohState::S); // set 0
        c.insert(1, CohState::S); // set 1
        assert!(c.needs_victim(2)); // set 0 full
        assert_eq!(c.victim_of(2), 0);
        assert!(c.needs_victim(3)); // set 1 full
        assert_eq!(c.victim_of(3), 1);
    }

    /// The dirty index must agree with a brute-force scan through every
    /// metadata transition: set, clear via set_line_meta, take_covered,
    /// and remove.
    #[test]
    fn dirty_index_tracks_every_transition() {
        let mut c = L1Cache::new(4, 2);
        let lines = [0u64, 1, 2, 5, 4];
        for &l in &lines {
            c.insert(l, CohState::M);
        }
        let brute = |c: &L1Cache| -> Vec<LineAddr> {
            c.lines()
                .map(|l| l.line)
                .filter(|&l| c.meta(l).nvm_dirty)
                .collect()
        };
        let indexed = |c: &L1Cache| -> Vec<LineAddr> {
            let mut v = Vec::new();
            c.for_each_nvm_dirty(&mut |line, _| v.push(line));
            v
        };
        assert_eq!(indexed(&c), Vec::<LineAddr>::new());
        for &l in &lines {
            c.set_line_meta(l, dirty_meta());
            assert_eq!(indexed(&c), brute(&c));
        }
        c.set_line_meta(1, LineMeta::default());
        assert_eq!(indexed(&c), brute(&c));
        // Setting an already-dirty line dirty again must not double count.
        c.set_line_meta(2, dirty_meta());
        assert_eq!(indexed(&c), brute(&c));
        c.take_covered(0);
        assert_eq!(indexed(&c), brute(&c));
        c.remove(5);
        assert_eq!(indexed(&c), brute(&c));
        c.take_covered(2);
        c.take_covered(4);
        assert_eq!(indexed(&c), Vec::<LineAddr>::new());
        assert!(c.dirty_set_bits.iter().all(|&w| w == 0), "bitmap drained");
    }

    /// Visit order must match `lines()` order exactly — engine stage-0
    /// ordering (and therefore NVM queueing and persist stamps) depends
    /// on it.
    #[test]
    fn dirty_visit_order_matches_full_scan() {
        let mut c = L1Cache::new(4, 4);
        // Residence order inside a set changes via swap_remove; build a
        // history with removals to exercise that.
        for l in [0u64, 4, 8, 12, 1, 5, 9, 2, 3, 7] {
            c.insert(l, CohState::M);
            c.set_line_meta(l, dirty_meta());
        }
        c.remove(4); // swap_remove reorders set 0
        let brute: Vec<LineAddr> = c
            .lines()
            .map(|l| l.line)
            .filter(|&l| c.meta(l).nvm_dirty)
            .collect();
        let mut indexed = Vec::new();
        c.for_each_nvm_dirty(&mut |line, _| indexed.push(line));
        assert_eq!(indexed, brute);
    }

    /// The SoA columns must follow the tags through `swap_remove`: a
    /// line's release bit and min-epoch stay attached to *that line*
    /// when another way in its set is removed.
    #[test]
    fn meta_columns_follow_swap_remove() {
        let mut c = L1Cache::new(2, 4);
        // Set 0 (even lines) gets three ways with distinct metadata.
        for (l, epoch) in [(0u64, 3u16), (2, 7), (4, 11)] {
            c.insert(l, CohState::M);
            c.set_line_meta(
                l,
                LineMeta {
                    nvm_dirty: true,
                    release: epoch == 7,
                    min_epoch: epoch,
                },
            );
        }
        // Removing way 0 swaps line 4's metadata into its slot.
        c.remove(0);
        assert_eq!(c.meta(2).min_epoch, 7);
        assert!(c.meta(2).release);
        assert_eq!(c.meta(4).min_epoch, 11);
        assert!(!c.meta(4).release);
        assert!(c.meta(0).min_epoch == 0 && !c.meta(0).nvm_dirty);
        // The scan reports exactly the surviving lines, with the
        // metadata they were given.
        let mut seen = Vec::new();
        c.for_each_nvm_dirty(&mut |line, meta| seen.push((line, meta.min_epoch)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(2, 7), (4, 11)]);
    }

    /// Metadata columns work across word boundaries (ways that do not
    /// divide 64 cleanly).
    #[test]
    fn odd_geometry_straddles_word_boundaries() {
        let mut c = L1Cache::new(16, 5); // slots 60..65 straddle word 0/1
        let lines: Vec<u64> = (0..16).map(|i| 12 + 16 * i).collect(); // all set 12
        for (i, &l) in lines.iter().take(5).enumerate() {
            c.insert(l, CohState::M);
            c.set_line_meta(
                l,
                LineMeta {
                    nvm_dirty: i % 2 == 0,
                    release: false,
                    min_epoch: i as u16,
                },
            );
        }
        let brute: Vec<LineAddr> = c
            .lines()
            .map(|l| l.line)
            .filter(|&l| c.meta(l).nvm_dirty)
            .collect();
        let mut indexed = Vec::new();
        c.for_each_nvm_dirty(&mut |line, _| indexed.push(line));
        assert_eq!(indexed, brute);
        assert_eq!(indexed.len(), 3);
    }
}
