//! Set-associative L1 data cache array with per-line coherence state,
//! persistency metadata, and covered-write tracking.

use lrp_core::mech::{L1View, LineMeta};
use lrp_model::{EventId, LineAddr};

/// MESI stable states of an L1 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohState {
    /// Shared (read-only).
    S,
    /// Exclusive (clean, sole copy).
    E,
    /// Modified (dirty, sole copy).
    M,
}

/// One resident L1 line.
#[derive(Debug, Clone)]
pub struct L1Line {
    /// The line address.
    pub line: LineAddr,
    /// Coherence state.
    pub state: CohState,
    /// Persistency metadata (min-epoch, release bit, nvm-dirty).
    pub meta: LineMeta,
    /// Write events buffered since the line was last flushed.
    pub covered: Vec<EventId>,
    /// Written since fill (data differs from the LLC copy).
    pub dirty: bool,
    /// LRU timestamp.
    pub lru: u64,
}

/// A set-associative L1.
#[derive(Debug)]
pub struct L1Cache {
    sets: Vec<Vec<L1Line>>,
    ways: usize,
    clock: u64,
}

impl L1Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        L1Cache {
            sets: (0..sets).map(|_| Vec::new()).collect(),
            ways,
            clock: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line as usize) % self.sets.len()
    }

    /// Immutable lookup.
    pub fn get(&self, line: LineAddr) -> Option<&L1Line> {
        self.sets[self.set_of(line)].iter().find(|l| l.line == line)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut L1Line> {
        let s = self.set_of(line);
        self.sets[s].iter_mut().find(|l| l.line == line)
    }

    /// Touches the line for LRU.
    pub fn touch(&mut self, line: LineAddr) {
        self.clock += 1;
        let c = self.clock;
        if let Some(l) = self.get_mut(line) {
            l.lru = c;
        }
    }

    /// True if inserting `line` requires evicting a resident line.
    pub fn needs_victim(&self, line: LineAddr) -> bool {
        self.get(line).is_none() && self.sets[self.set_of(line)].len() >= self.ways
    }

    /// The LRU victim of `line`'s set (must be full).
    pub fn victim_of(&self, line: LineAddr) -> LineAddr {
        let set = &self.sets[self.set_of(line)];
        set.iter()
            .min_by_key(|l| l.lru)
            .expect("set not empty")
            .line
    }

    /// Removes and returns a resident line.
    pub fn remove(&mut self, line: LineAddr) -> Option<L1Line> {
        let s = self.set_of(line);
        let idx = self.sets[s].iter().position(|l| l.line == line)?;
        Some(self.sets[s].swap_remove(idx))
    }

    /// Inserts a line (the caller has made room).
    pub fn insert(&mut self, line: LineAddr, state: CohState) {
        assert!(self.get(line).is_none(), "line {line:#x} already resident");
        let s = self.set_of(line);
        assert!(self.sets[s].len() < self.ways, "no room in set");
        self.clock += 1;
        let lru = self.clock;
        self.sets[s].push(L1Line {
            line,
            state,
            meta: LineMeta::default(),
            covered: Vec::new(),
            dirty: false,
            lru,
        });
    }

    /// Hands the line's buffered writes to the persist subsystem: drains
    /// `covered` and clears the persistency metadata (the data is on its
    /// way to NVM; later writes re-dirty the line with a fresh epoch).
    pub fn take_covered(&mut self, line: LineAddr) -> Vec<EventId> {
        if let Some(l) = self.get_mut(line) {
            l.meta.nvm_dirty = false;
            l.meta.release = false;
            std::mem::take(&mut l.covered)
        } else {
            Vec::new()
        }
    }

    /// All resident lines (for statistics).
    pub fn lines(&self) -> impl Iterator<Item = &L1Line> {
        self.sets.iter().flatten()
    }
}

/// [`L1View`] adapter handed to persistency mechanisms.
pub struct L1ViewAdapter<'a>(pub &'a mut L1Cache);

impl L1View for L1ViewAdapter<'_> {
    fn nvm_dirty_lines(&self) -> Vec<(LineAddr, LineMeta)> {
        self.0
            .lines()
            .filter(|l| l.meta.nvm_dirty)
            .map(|l| (l.line, l.meta))
            .collect()
    }

    fn meta(&self, line: LineAddr) -> LineMeta {
        self.0.get(line).map(|l| l.meta).unwrap_or_default()
    }

    fn set_meta(&mut self, line: LineAddr, meta: LineMeta) {
        if let Some(l) = self.0.get_mut(line) {
            l.meta = meta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut c = L1Cache::new(4, 2);
        c.insert(0x40, CohState::E);
        assert_eq!(c.get(0x40).unwrap().state, CohState::E);
        assert!(c.get(0x44).is_none());
        let l = c.remove(0x40).unwrap();
        assert_eq!(l.line, 0x40);
        assert!(c.get(0x40).is_none());
    }

    #[test]
    fn victim_is_lru() {
        let mut c = L1Cache::new(1, 2);
        c.insert(1, CohState::S);
        c.insert(2, CohState::S);
        c.touch(1); // 2 becomes LRU
        assert!(c.needs_victim(3));
        assert_eq!(c.victim_of(3), 2);
        assert!(!c.needs_victim(1), "resident line needs no victim");
    }

    #[test]
    fn take_covered_clears_meta() {
        let mut c = L1Cache::new(1, 2);
        c.insert(8, CohState::M);
        {
            let l = c.get_mut(8).unwrap();
            l.covered = vec![1, 2, 3];
            l.meta.nvm_dirty = true;
            l.meta.release = true;
        }
        assert_eq!(c.take_covered(8), vec![1, 2, 3]);
        let l = c.get(8).unwrap();
        assert!(!l.meta.nvm_dirty && !l.meta.release);
        assert!(c.take_covered(8).is_empty(), "second take is empty");
    }

    #[test]
    fn view_adapter_reports_dirty_lines() {
        let mut c = L1Cache::new(2, 2);
        c.insert(1, CohState::M);
        c.insert(2, CohState::M);
        c.get_mut(1).unwrap().meta.nvm_dirty = true;
        let mut view = L1ViewAdapter(&mut c);
        use lrp_core::mech::L1View as _;
        assert_eq!(view.nvm_dirty_lines().len(), 1);
        let mut m = view.meta(2);
        m.nvm_dirty = true;
        view.set_meta(2, m);
        assert_eq!(view.nvm_dirty_lines().len(), 2);
    }

    #[test]
    fn sets_isolate_conflicts() {
        let mut c = L1Cache::new(2, 1);
        c.insert(0, CohState::S); // set 0
        c.insert(1, CohState::S); // set 1
        assert!(c.needs_victim(2)); // set 0 full
        assert_eq!(c.victim_of(2), 0);
        assert!(c.needs_victim(3)); // set 1 full
        assert_eq!(c.victim_of(3), 1);
    }
}
