//! Mechanism-differentiating tests: the full barrier vs RP relaxation,
//! configuration sweeps, and regressions for protocol races found during
//! development.

use lrp_lfds::{Structure, WorkloadSpec};
use lrp_model::litmus::LitmusBuilder;
use lrp_model::spec::{check_epoch_full_barrier, check_rp};
use lrp_model::Trace;
use lrp_sim::{Mechanism, Sim, SimConfig};

fn run(trace: &Trace, mech: Mechanism) -> lrp_sim::RunResult {
    Sim::new(SimConfig::new(mech), trace).run()
}

/// SB and BB enforce the intra-thread *full* barrier; LRP only RP. On a
/// trace engineered to expose the difference (a write after a release
/// whose line is downgraded while the pre-release write stays buffered),
/// LRP exploits the relaxation.
#[test]
fn lrp_exploits_rp_relaxation_sb_bb_do_not() {
    // T0: W A; Rel F; W B. T1 then reads B's line (plain), forcing B to
    // persist; A and F stay buffered in T0's L1 (never synchronized).
    let mut b = LitmusBuilder::new(2);
    b.write(0, 0x1000, 1); // A
    b.write_rel(0, 0x2000, 2); // F
    b.write(0, 0x3000, 3); // B
    b.read(1, 0x3000); // downgrade B only
    let t = b.build();

    for m in [Mechanism::Sb, Mechanism::Bb] {
        let r = run(&t, m);
        check_rp(&t, &r.schedule).unwrap();
        check_epoch_full_barrier(&t, &r.schedule)
            .unwrap_or_else(|v| panic!("{m} must respect the full barrier: {v:?}"));
    }
    let r = run(&t, Mechanism::Lrp);
    check_rp(&t, &r.schedule).unwrap();
    // B persisted (downgraded), A did not: full-barrier order violated —
    // legally, under RP's one-sided semantics (Figure 2b).
    assert!(
        r.schedule.stamp(2).is_some(),
        "B persisted via the downgrade"
    );
    assert!(
        r.schedule.stamp(0).is_none(),
        "A stays lazily buffered in the L1"
    );
    assert!(check_epoch_full_barrier(&t, &r.schedule).is_err());
}

/// Regression: a forward must never overtake an in-flight exclusive
/// grant (the FIFO-channel race found by the RP checker). Three readers
/// request the line while the owner's grant is still in the network.
#[test]
fn regression_forward_does_not_overtake_grant() {
    let mut b = LitmusBuilder::new(4);
    b.init(0x200, 0);
    b.write(0, 0x100, 1);
    b.cas(0, 0x200, 0, 1, lrp_model::Annot::Release);
    for t in 1..4u16 {
        b.read_acq(t, 0x200);
        b.write(t, 0x300 + 0x100 * t as u64, 7);
    }
    let t = b.build();
    for m in [Mechanism::Lrp, Mechanism::Bb, Mechanism::Sb] {
        let r = run(&t, m);
        check_rp(&t, &r.schedule).unwrap_or_else(|v| panic!("{m}: {v:?}"));
    }
}

/// Regression: a release committing while a downgrade's engine run is in
/// flight must not ride the response unpersisted (the downgrade-holds-
/// the-line fix). Reproduced as back-to-back releases to one line under
/// cross-thread reads.
#[test]
fn regression_release_during_downgrade() {
    let mut b = LitmusBuilder::new(3);
    b.init(0x100, 0);
    for i in 0..12u64 {
        let t = (i % 2) as u16;
        b.write(t, 0x1000 + 8 * i, i); // keep prior writes buffered
        b.cas(t, 0x100, i, i + 1, lrp_model::Annot::Release);
        if i % 3 == 2 {
            b.read_acq(2, 0x100);
            b.write(2, 0x4000 + 8 * i, i);
        }
    }
    let t = b.build();
    let r = run(&t, Mechanism::Lrp);
    check_rp(&t, &r.schedule).unwrap();
}

#[test]
fn tiny_ret_forces_more_flushes_than_large_ret() {
    let t = WorkloadSpec::new(Structure::SkipList)
        .initial_size(64)
        .threads(2)
        .ops_per_thread(40)
        .seed(3)
        .build_trace();
    let mut small = SimConfig::new(Mechanism::Lrp);
    small.lrp.ret_capacity = 2;
    small.lrp.ret_watermark = 1;
    let mut large = SimConfig::new(Mechanism::Lrp);
    large.lrp.ret_capacity = 64;
    large.lrp.ret_watermark = 60;
    let fs = Sim::new(small, &t).run();
    let fl = Sim::new(large, &t).run();
    check_rp(&t, &fs.schedule).unwrap();
    check_rp(&t, &fl.schedule).unwrap();
    assert!(
        fs.stats.total_flushes() >= fl.stats.total_flushes(),
        "tiny RET drains constantly: {} vs {}",
        fs.stats.total_flushes(),
        fl.stats.total_flushes()
    );
}

#[test]
fn strict_epoch_engine_ablation_still_enforces_rp() {
    let t = WorkloadSpec::new(Structure::Bst)
        .initial_size(32)
        .threads(3)
        .ops_per_thread(12)
        .seed(9)
        .build_trace();
    let mut cfg = SimConfig::new(Mechanism::Lrp);
    cfg.lrp.strict_epoch_engine = true;
    let strict = Sim::new(cfg, &t).run();
    check_rp(&t, &strict.schedule).unwrap();
    let normal = run(&t, Mechanism::Lrp);
    check_rp(&t, &normal.schedule).unwrap();
    // Both engine orders are RP-valid; their relative speed is
    // workload-dependent (the ablation bench quantifies it).
    assert!(strict.stats.cycles > 0 && normal.stats.cycles > 0);
}

#[test]
fn bb_without_proactive_flushing_is_not_faster() {
    let t = WorkloadSpec::new(Structure::HashMap)
        .initial_size(64)
        .threads(4)
        .ops_per_thread(20)
        .seed(5)
        .build_trace();
    let mut off = SimConfig::new(Mechanism::Bb);
    off.bb.proactive_flush = false;
    let r_off = Sim::new(off, &t).run();
    let r_on = run(&t, Mechanism::Bb);
    check_rp(&t, &r_off.schedule).unwrap();
    assert!(r_off.stats.cycles >= r_on.stats.cycles);
}

#[test]
fn store_buffer_backpressure_is_live() {
    // A long burst of stores to distinct lines with a 2-entry buffer.
    let mut cfg = SimConfig::new(Mechanism::Lrp);
    cfg.store_buffer = 2;
    let mut b = LitmusBuilder::new(1);
    for i in 0..64u64 {
        b.write(0, 0x1000 + 64 * i, i);
    }
    let t = b.build();
    let r = Sim::new(cfg, &t).run();
    assert_eq!(r.stats.stores, 64);
}

#[test]
fn dpo_handles_litmus_relay() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x100, 0);
    for i in 0..6u64 {
        let t = (i % 2) as u16;
        b.write(t, 0x1000 + 64 * i, i);
        b.cas(t, 0x100, i, i + 1, lrp_model::Annot::Release);
    }
    let t = b.build();
    let r = run(&t, Mechanism::Dpo);
    check_rp(&t, &r.schedule).unwrap();
    // Full barrier holds too: the FIFO never reorders a thread's writes.
    check_epoch_full_barrier(&t, &r.schedule).unwrap();
}

#[test]
fn report_renders_for_every_mechanism() {
    let t = WorkloadSpec::new(Structure::Queue)
        .initial_size(8)
        .threads(2)
        .ops_per_thread(6)
        .seed(4)
        .build_trace();
    for m in Mechanism::EXTENDED {
        let r = run(&t, m);
        let text = lrp_sim::report::render(m.name(), &r);
        assert!(text.contains("cycles"));
    }
}
