//! Regression test for persist-engine scan charging (§5.2.2).
//!
//! A sync-triggered engine run (I2 downgrade) pays the mechanism's L1
//! scan latency once, before its first flush stage, on the critical
//! path of the acquiring reader. The sequencer tracks this with the
//! job's `scan_charged` flag; this test pins the end-to-end effect so
//! the charge can neither be lost nor applied per-stage.

use lrp_model::litmus::LitmusBuilder;
use lrp_model::Trace;
use lrp_sim::{Mechanism, Sim, SimConfig};

/// Message-passing: one plain write and one release on thread 0, one
/// acquire on thread 1. Under LRP the acquire's downgrade plans exactly
/// one engine run (flush the written line, then the release).
fn mp_trace() -> Trace {
    let mut b = LitmusBuilder::new(2);
    b.write(0, 0x100, 1);
    b.write_rel(0, 0x180, 1);
    b.read_acq(1, 0x180);
    b.build()
}

fn cycles_with_scan(scan: u64) -> u64 {
    let mut cfg = SimConfig::new(Mechanism::Lrp);
    cfg.lrp.scan_cycles = scan;
    Sim::new(cfg, &mp_trace()).run().stats.cycles
}

#[test]
fn downgrade_scan_latency_charged_exactly_once() {
    let base = cycles_with_scan(0);
    for s in [16, 64, 256] {
        let got = cycles_with_scan(s);
        assert_eq!(
            got,
            base + s,
            "scan={s}: expected exactly one scan charge on the critical path"
        );
    }
}

#[test]
fn scan_does_not_perturb_persist_order() {
    let trace = mp_trace();
    let mut cfg = SimConfig::new(Mechanism::Lrp);
    cfg.lrp.scan_cycles = 0;
    let fast = Sim::new(cfg.clone(), &trace).run();
    cfg.lrp.scan_cycles = 128;
    let slow = Sim::new(cfg, &trace).run();
    let stamps = |r: &lrp_sim::RunResult| (0..3).map(|e| r.schedule.stamp(e)).collect::<Vec<_>>();
    assert_eq!(stamps(&fast), stamps(&slow), "scan latency changed stamps");
}
