//! End-to-end simulator tests: coherence protocol liveness, persist
//! schedule validity against the RP specification, and timing sanity
//! across mechanisms.

use lrp_lfds::{Structure, WorkloadSpec};
use lrp_model::litmus::LitmusBuilder;
use lrp_model::spec::check_rp;
use lrp_model::{Annot, Trace};
use lrp_sim::{Mechanism, NvmMode, Sim, SimConfig};

fn run(trace: &Trace, mech: Mechanism) -> lrp_sim::RunResult {
    Sim::new(SimConfig::new(mech), trace).run()
}

fn fig1_trace() -> Trace {
    let mut b = LitmusBuilder::new(2);
    b.init(0x200, 0);
    b.write(0, 0x100, 1);
    b.write(0, 0x108, 2);
    b.cas(0, 0x200, 0, 0x100, Annot::Release);
    b.read_acq(1, 0x200);
    b.write(1, 0x300, 3);
    b.build()
}

#[test]
fn single_core_trace_completes() {
    let mut b = LitmusBuilder::new(1);
    for i in 0..32u64 {
        b.write(0, 0x1000 + 8 * i, i);
    }
    for i in 0..32u64 {
        b.read(0, 0x1000 + 8 * i);
    }
    let t = b.build();
    for m in Mechanism::ALL {
        let r = run(&t, m);
        assert!(r.stats.cycles > 0, "{m}: no progress");
        assert_eq!(r.stats.ops, 64, "{m}");
        assert_eq!(r.stats.stores, 32, "{m}");
    }
}

#[test]
fn message_passing_enforces_rp_under_lrp_sb_bb() {
    let t = fig1_trace();
    for m in [Mechanism::Lrp, Mechanism::Sb, Mechanism::Bb] {
        let r = run(&t, m);
        check_rp(&t, &r.schedule).unwrap_or_else(|v| panic!("{m}: RP violated: {v:?}"));
    }
}

#[test]
fn message_passing_triggers_downgrade_under_lrp() {
    let t = fig1_trace();
    let r = run(&t, Mechanism::Lrp);
    assert!(
        r.stats.downgrades > 0,
        "acquire must downgrade the release line"
    );
    // The release line and its two prior writes must have persisted.
    assert!(r.schedule.stamp(0).is_some(), "W1 persisted");
    assert!(r.schedule.stamp(2).is_some(), "release persisted");
    assert!(
        r.schedule.stamp(0) < r.schedule.stamp(2),
        "W1 persists before the release"
    );
}

#[test]
fn nop_persists_nothing_on_this_trace() {
    let t = fig1_trace();
    let r = run(&t, Mechanism::Nop);
    // No evictions (tiny footprint), so nothing ever reaches NVM.
    assert!(r.persist_log.is_empty());
    assert!(r.schedule.stamp(2).is_none());
}

#[test]
fn deterministic_cycles() {
    let t = fig1_trace();
    let a = run(&t, Mechanism::Lrp);
    let b = run(&t, Mechanism::Lrp);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.persist_log.len(), b.persist_log.len());
}

#[test]
fn workload_traces_satisfy_rp_for_all_enforcing_mechanisms() {
    for s in Structure::ALL {
        let spec = WorkloadSpec::new(s)
            .initial_size(24)
            .threads(3)
            .ops_per_thread(12)
            .seed(11);
        let t = spec.build_trace();
        for m in [Mechanism::Lrp, Mechanism::Sb, Mechanism::Bb] {
            let r = run(&t, m);
            check_rp(&t, &r.schedule)
                .unwrap_or_else(|v| panic!("{s} under {m}: RP violated: {v:?}"));
            assert!(r.stats.cycles > 0);
        }
    }
}

#[test]
fn nop_is_fastest_and_sb_is_slowest() {
    let spec = WorkloadSpec::new(Structure::HashMap)
        .initial_size(64)
        .threads(4)
        .ops_per_thread(24)
        .seed(7);
    let t = spec.build_trace();
    let nop = run(&t, Mechanism::Nop).stats.cycles;
    let lrp = run(&t, Mechanism::Lrp).stats.cycles;
    let bb = run(&t, Mechanism::Bb).stats.cycles;
    let sb = run(&t, Mechanism::Sb).stats.cycles;
    assert!(nop <= lrp, "nop {nop} <= lrp {lrp}");
    assert!(nop <= bb, "nop {nop} <= bb {bb}");
    assert!(nop <= sb, "nop {nop} <= sb {sb}");
    assert!(sb >= bb, "sb {sb} should not beat bb {bb}");
}

#[test]
fn uncached_mode_is_slower() {
    let spec = WorkloadSpec::new(Structure::LinkedList)
        .initial_size(32)
        .threads(2)
        .ops_per_thread(16)
        .seed(3);
    let t = spec.build_trace();
    for m in [Mechanism::Lrp, Mechanism::Bb, Mechanism::Sb] {
        let cached = Sim::new(SimConfig::new(m), &t).run().stats.cycles;
        let uncached = Sim::new(SimConfig::new(m).nvm_mode(NvmMode::Uncached), &t)
            .run()
            .stats
            .cycles;
        assert!(
            uncached >= cached,
            "{m}: uncached {uncached} < cached {cached}"
        );
    }
}

#[test]
fn lrp_has_fewer_critical_writebacks_than_bb() {
    let spec = WorkloadSpec::new(Structure::SkipList)
        .initial_size(64)
        .threads(4)
        .ops_per_thread(32)
        .seed(13);
    let t = spec.build_trace();
    let lrp = run(&t, Mechanism::Lrp).stats;
    let bb = run(&t, Mechanism::Bb).stats;
    assert!(
        lrp.critical_writeback_fraction() <= bb.critical_writeback_fraction(),
        "lrp {:.2} vs bb {:.2}",
        lrp.critical_writeback_fraction(),
        bb.critical_writeback_fraction()
    );
}

#[test]
fn dpo_extra_baseline_satisfies_rp_and_pays_for_no_coalescing() {
    let spec = WorkloadSpec::new(Structure::HashMap)
        .initial_size(64)
        .threads(4)
        .ops_per_thread(16)
        .seed(23);
    let t = spec.build_trace();
    let dpo = run(&t, Mechanism::Dpo);
    check_rp(&t, &dpo.schedule).unwrap();
    let lrp = run(&t, Mechanism::Lrp);
    // Delegation ships a flush per store: strictly more NVM traffic
    // than the coalescing cache-based approach.
    assert!(
        dpo.stats.total_flushes() > lrp.stats.total_flushes(),
        "dpo {} vs lrp {}",
        dpo.stats.total_flushes(),
        lrp.stats.total_flushes()
    );
    // (No cycle-count assertion: at low NVM pressure the delegated
    // queue can drain entirely off the critical path.)
}

#[test]
fn persist_log_stamps_are_monotone() {
    let spec = WorkloadSpec::new(Structure::Queue)
        .initial_size(16)
        .threads(2)
        .ops_per_thread(16)
        .seed(5);
    let t = spec.build_trace();
    let r = run(&t, Mechanism::Lrp);
    assert!(!r.persist_log.is_empty());
    for w in r.persist_log.windows(2) {
        assert!(w[0].stamp < w[1].stamp);
        assert!(w[0].time <= w[1].time);
    }
}

#[test]
fn capacity_evictions_occur_on_large_footprints() {
    // Touch far more lines than a 32 KB L1 holds.
    let mut b = LitmusBuilder::new(1);
    for i in 0..2048u64 {
        b.write(0, 0x10000 + 64 * i, i);
    }
    let t = b.build();
    let r = run(&t, Mechanism::Lrp);
    assert!(r.stats.evictions > 0, "must evict");
    // Evicted dirty lines persist via the directory (I4).
    assert!(!r.persist_log.is_empty());
    check_rp(&t, &r.schedule).unwrap();
}

#[test]
fn rmw_acquire_blocks_until_persist_i3() {
    let mut b = LitmusBuilder::new(1);
    b.init(0x100, 0);
    b.cas(0, 0x100, 0, 1, Annot::AcqRel);
    b.write(0, 0x200, 2);
    let t = b.build();
    let r = run(&t, Mechanism::Lrp);
    // The CAS write must be durable (I3 forced the flush).
    assert!(r.schedule.stamp(0).is_some(), "acq-RMW write persisted");
    check_rp(&t, &r.schedule).unwrap();
}

#[test]
fn contended_line_ping_pong_is_live() {
    // Two threads CAS the same line repeatedly: downgrades + upgrades.
    let mut b = LitmusBuilder::new(2);
    b.init(0x100, 0);
    for i in 0..20u64 {
        let tid = (i % 2) as u16;
        b.cas(tid, 0x100, i, i + 1, Annot::Release);
    }
    let t = b.build();
    for m in Mechanism::ALL {
        let r = run(&t, m);
        assert!(r.stats.cycles > 0, "{m}");
        if m != Mechanism::Nop {
            check_rp(&t, &r.schedule).unwrap_or_else(|e| panic!("{m}: {e:?}"));
        }
    }
}
