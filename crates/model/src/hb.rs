//! Exact happens-before closure under the RC axioms of §2.1.
//!
//! Happens-before under the paper's RC model is *not* a superset of
//! program order: two plain accesses to different addresses by the same
//! thread are unordered. The generator edges are exactly:
//!
//! * **release one-sided barrier**: `M po→ Rel ⇒ M hb→ Rel`,
//! * **acquire one-sided barrier**: `Acq po→ M ⇒ Acq hb→ M`,
//! * **same-address program order**: `M1 po→ M2` (same address) `⇒ M1 hb→ M2`,
//! * **synchronizes-with**: `Rel sw→ Acq ⇒ Rel hb→ Acq` (an acquire that
//!   reads from a release of another thread),
//!
//! closed under transitivity. RMW atomicity is inherent because an RMW is
//! a single [`crate::Event`] carrying both effects.
//!
//! The closure is computed exactly with one bitset row per event, in a
//! single pass over the interleaving (which is a linearization of
//! happens-before, since every generator edge points forward in it). The
//! three per-thread aggregates make each edge family O(1) amortized:
//!
//! * `all[t]` — union of `{e} ∪ preds(e)` over all prior events of `t`
//!   (the sources of release-barrier edges),
//! * `acq[t]` — the same union over prior *acquires* of `t` (the sources
//!   of acquire-barrier edges),
//! * `last[(t, addr)]` — the previous access of `t` to `addr`.

use crate::event::Trace;
use crate::types::EventId;
use std::collections::HashMap;

/// Error returned when a trace is too large for the dense closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooLarge {
    /// Number of events in the offending trace.
    pub events: usize,
    /// The configured limit.
    pub limit: usize,
}

impl std::fmt::Display for TooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace has {} events; dense happens-before closure is limited to {}",
            self.events, self.limit
        )
    }
}

impl std::error::Error for TooLarge {}

/// Dense happens-before closure of a trace.
#[derive(Debug, Clone)]
pub struct HbClosure {
    n: usize,
    words: usize,
    /// Row-major bitsets: bit `j` of row `i` set ⇔ `j hb→ i`.
    preds: Vec<u64>,
}

impl HbClosure {
    /// Default maximum trace size (events). 20 000 events ≈ 50 MB of
    /// bitsets; larger traces should use the streaming checkers in
    /// [`crate::spec`] instead, which need no closure.
    pub const MAX_EVENTS: usize = 20_000;

    /// Computes the closure, refusing traces above [`Self::MAX_EVENTS`].
    pub fn compute(trace: &Trace) -> Result<Self, TooLarge> {
        Self::compute_inner(trace, Self::MAX_EVENTS, false)
    }

    /// Computes the *persist-order* closure: identical to [`compute`]
    /// except that same-address program order contributes edges only
    /// from the previous **write** (the paper's expanded RP rule of
    /// §4.1), not from reads. Full RC happens-before is strictly larger
    /// (read-mediated same-address edges), and those extra edges are not
    /// lifted into persist order by any rule — nor enforced by LRP's
    /// hardware. Use this closure with
    /// [`crate::spec::check_cut_closure`] to cross-check
    /// [`crate::spec::check_rp`].
    pub fn compute_persist(trace: &Trace) -> Result<Self, TooLarge> {
        Self::compute_inner(trace, Self::MAX_EVENTS, true)
    }

    /// Computes the closure with an explicit size limit.
    pub fn compute_with_limit(trace: &Trace, limit: usize) -> Result<Self, TooLarge> {
        Self::compute_inner(trace, limit, false)
    }

    fn compute_inner(trace: &Trace, limit: usize, persist: bool) -> Result<Self, TooLarge> {
        let n = trace.events.len();
        if n > limit {
            return Err(TooLarge { events: n, limit });
        }
        let words = n.div_ceil(64);
        let mut preds = vec![0u64; n * words];
        // Per-thread aggregates, as bitset rows.
        let nt = trace.nthreads as usize;
        let mut all = vec![0u64; nt * words];
        let mut acq = vec![0u64; nt * words];
        let mut last: HashMap<(u16, u64), EventId> = HashMap::new();
        let mut scratch = vec![0u64; words];

        for e in &trace.events {
            let i = e.id as usize;
            let t = e.tid as usize;
            scratch.iter_mut().for_each(|w| *w = 0);
            // Acquire one-sided barrier: every earlier acquire of t.
            for (s, a) in scratch.iter_mut().zip(&acq[t * words..(t + 1) * words]) {
                *s |= a;
            }
            // Release one-sided barrier: everything earlier in t.
            if e.is_release() {
                for (s, a) in scratch.iter_mut().zip(&all[t * words..(t + 1) * words]) {
                    *s |= a;
                }
            }
            // Same-address program order (persist mode: write-to-write
            // only — no rule lifts a write-before-read edge).
            if (!persist || e.is_write_effect()) && last.contains_key(&(e.tid, e.addr)) {
                let &p = last.get(&(e.tid, e.addr)).expect("checked");
                let p = p as usize;
                scratch[p / 64] |= 1 << (p % 64);
                let (lo, hi) = (p * words, (p + 1) * words);
                // Split borrows: predecessor rows are strictly earlier.
                for (s, a) in scratch.iter_mut().zip(&preds[lo..hi]) {
                    *s |= a;
                }
            }
            // Synchronizes-with.
            if e.is_acquire() {
                if let Some(w) = e.rf {
                    let we = &trace.events[w as usize];
                    if we.is_release() && we.tid != e.tid {
                        let p = w as usize;
                        scratch[p / 64] |= 1 << (p % 64);
                        for (s, a) in scratch.iter_mut().zip(&preds[p * words..(p + 1) * words]) {
                            *s |= a;
                        }
                    }
                }
            }
            preds[i * words..(i + 1) * words].copy_from_slice(&scratch);
            // Update aggregates with {e} ∪ preds(e).
            scratch[i / 64] |= 1 << (i % 64);
            for (a, s) in all[t * words..(t + 1) * words].iter_mut().zip(&scratch) {
                *a |= s;
            }
            if e.is_acquire() {
                for (a, s) in acq[t * words..(t + 1) * words].iter_mut().zip(&scratch) {
                    *a |= s;
                }
            }
            if !persist || e.is_write_effect() {
                last.insert((e.tid, e.addr), e.id);
            }
        }
        Ok(HbClosure { n, words, preds })
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the closure covers no events.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Does `a` happen before `b`? (Irreflexive: `hb(x, x)` is false.)
    #[inline]
    pub fn hb(&self, a: EventId, b: EventId) -> bool {
        let (a, b) = (a as usize, b as usize);
        debug_assert!(a < self.n && b < self.n);
        self.preds[b * self.words + a / 64] >> (a % 64) & 1 == 1
    }

    /// Iterates over the happens-before predecessors of `e`.
    pub fn preds_of(&self, e: EventId) -> impl Iterator<Item = EventId> + '_ {
        let row = &self.preds[e as usize * self.words..(e as usize + 1) * self.words];
        row.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| (wi * 64 + b) as EventId)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::LitmusBuilder;
    use crate::types::Annot;

    #[test]
    fn plain_accesses_different_addresses_unordered() {
        let mut b = LitmusBuilder::new(1);
        let w1 = b.write(0, 0x10, 1);
        let w2 = b.write(0, 0x18, 2);
        let hb = HbClosure::compute(&b.build()).unwrap();
        assert!(!hb.hb(w1, w2));
        assert!(!hb.hb(w2, w1));
    }

    #[test]
    fn same_address_po_is_ordered() {
        let mut b = LitmusBuilder::new(1);
        let w1 = b.write(0, 0x10, 1);
        let w2 = b.write(0, 0x10, 2);
        let hb = HbClosure::compute(&b.build()).unwrap();
        assert!(hb.hb(w1, w2));
        assert!(!hb.hb(w2, w1));
    }

    #[test]
    fn release_orders_all_prior_thread_events() {
        let mut b = LitmusBuilder::new(1);
        let w1 = b.write(0, 0x10, 1);
        let w2 = b.write(0, 0x18, 2);
        let rel = b.write_rel(0, 0x20, 3);
        let after = b.write(0, 0x28, 4);
        let hb = HbClosure::compute(&b.build()).unwrap();
        assert!(hb.hb(w1, rel));
        assert!(hb.hb(w2, rel));
        // One-sided: the release does NOT order later plain writes.
        assert!(!hb.hb(rel, after));
        assert!(!hb.hb(w1, after));
    }

    #[test]
    fn acquire_orders_all_later_thread_events() {
        let mut b = LitmusBuilder::new(1);
        let before = b.write(0, 0x10, 1);
        let acq = b.read_acq(0, 0x20);
        let after1 = b.write(0, 0x28, 2);
        let after2 = b.read(0, 0x30);
        let hb = HbClosure::compute(&b.build()).unwrap();
        assert!(hb.hb(acq, after1));
        assert!(hb.hb(acq, after2));
        // One-sided: earlier plain write unordered with the acquire.
        assert!(!hb.hb(before, acq));
    }

    #[test]
    fn message_passing_is_transitively_ordered() {
        // The paper's Figure 1 shape: W1 po Rel sw Acq po W4.
        let mut b = LitmusBuilder::new(2);
        let w1 = b.write(0, 0x100, 42);
        let rel = b.write_rel(0, 0x200, 0x100);
        let acq = b.read_acq(1, 0x200);
        let w4 = b.write(1, 0x300, 7);
        let hb = HbClosure::compute(&b.build()).unwrap();
        assert!(hb.hb(w1, rel));
        assert!(hb.hb(rel, acq));
        assert!(hb.hb(acq, w4));
        assert!(hb.hb(w1, w4), "transitive closure W1 hb W4");
        assert!(hb.hb(rel, w4));
    }

    #[test]
    fn rf_from_plain_write_does_not_synchronize() {
        let mut b = LitmusBuilder::new(2);
        let w = b.write(0, 0x100, 1); // plain, not a release
        let r = b.read_acq(1, 0x100);
        let hb = HbClosure::compute(&b.build()).unwrap();
        assert!(!hb.hb(w, r), "acquire of a plain write creates no sw edge");
    }

    #[test]
    fn rf_same_thread_is_same_addr_not_sw() {
        let mut b = LitmusBuilder::new(1);
        let w = b.write_rel(0, 0x100, 1);
        let r = b.read_acq(0, 0x100);
        let hb = HbClosure::compute(&b.build()).unwrap();
        assert!(hb.hb(w, r), "same-address po still orders them");
    }

    #[test]
    fn rmw_acquire_release_chains() {
        // T0 prepares a node and CAS-releases a link; T1 CAS-acq_rels the
        // same link and then writes. Both chains must be in hb.
        let mut b = LitmusBuilder::new(2);
        b.init(0x200, 0);
        let w1 = b.write(0, 0x100, 42);
        let rel = b.cas(0, 0x200, 0, 0x100, Annot::AcqRel);
        let acq = b.cas(1, 0x200, 0x100, 0x300, Annot::AcqRel);
        let w4 = b.write(1, 0x310, 9);
        let hb = HbClosure::compute(&b.build()).unwrap();
        assert!(hb.hb(w1, rel));
        assert!(hb.hb(rel, acq));
        assert!(hb.hb(acq, w4));
        assert!(hb.hb(w1, w4));
    }

    #[test]
    fn failed_rmw_still_acquires_but_does_not_release() {
        let mut b = LitmusBuilder::new(2);
        b.init(0x200, 5);
        let rel = b.write_rel(0, 0x200, 6);
        let fail = b.cas(1, 0x200, 99, 1, Annot::AcqRel); // fails, reads 6
        let w = b.write(1, 0x300, 1);
        let hb = HbClosure::compute(&b.build()).unwrap();
        assert!(
            hb.hb(rel, fail),
            "failed acq-RMW synchronizes with the release it read"
        );
        assert!(hb.hb(fail, w));
        assert!(hb.hb(rel, w));
    }

    #[test]
    fn persist_closure_drops_read_mediated_same_addr_edges() {
        // T writes x, acquire-reads its own x, then writes y. Full hb
        // orders Wx before Wy (through the read); the persist closure —
        // matching the paper's expanded rules and the LRP hardware —
        // does not.
        let mut b = LitmusBuilder::new(1);
        let wx = b.write(0, 0x10, 1);
        let r = b.read_acq(0, 0x10);
        let wy = b.write(0, 0x20, 2);
        let t = b.build();
        let full = HbClosure::compute(&t).unwrap();
        assert!(full.hb(wx, r) && full.hb(r, wy) && full.hb(wx, wy));
        let persist = HbClosure::compute_persist(&t).unwrap();
        assert!(persist.hb(r, wy), "acquire barrier survives");
        assert!(!persist.hb(wx, wy), "read-bridge edge is not lifted");
    }

    #[test]
    fn persist_closure_keeps_write_chains_and_sw() {
        let mut b = LitmusBuilder::new(2);
        b.init(0x200, 0);
        let w1 = b.write(0, 0x100, 42);
        let rel = b.write_rel(0, 0x200, 1);
        let acq = b.read_acq(1, 0x200);
        let w4 = b.write(1, 0x300, 7);
        let hb = HbClosure::compute_persist(&b.build()).unwrap();
        assert!(hb.hb(w1, rel));
        assert!(hb.hb(rel, acq));
        assert!(hb.hb(acq, w4));
        assert!(hb.hb(w1, w4));
    }

    #[test]
    fn size_limit_enforced() {
        let mut b = LitmusBuilder::new(1);
        for i in 0..10 {
            b.write(0, 8 * i, i);
        }
        let t = b.build();
        assert!(HbClosure::compute_with_limit(&t, 5).is_err());
        assert!(HbClosure::compute_with_limit(&t, 10).is_ok());
    }

    #[test]
    fn preds_of_enumerates_exactly() {
        let mut b = LitmusBuilder::new(2);
        let w1 = b.write(0, 0x100, 42);
        let rel = b.write_rel(0, 0x200, 0x100);
        let acq = b.read_acq(1, 0x200);
        let hb = HbClosure::compute(&b.build()).unwrap();
        let preds: Vec<_> = hb.preds_of(acq).collect();
        assert_eq!(preds, vec![w1, rel]);
    }
}
