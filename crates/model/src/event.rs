//! Memory events, operation markers, and execution traces.
//!
//! A [`Trace`] is the interface between the functional executor
//! (`lrp-exec`), the timing simulator (`lrp-sim`), and the recovery
//! checker (`lrp-recovery`): it records the global interleaving of memory
//! events of one concurrent execution, with ordering annotations and
//! reads-from edges — the same information the paper extracts with Pin.

use crate::types::{Addr, Annot, EventId, ThreadId};

/// The kind of a memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// A read-modify-write whose compare succeeded: has both a read and a
    /// write effect, and the two appear atomically in happens-before
    /// (RMW-atomicity axiom, §2.1).
    RmwSuccess,
    /// A read-modify-write whose compare failed: read effect only.
    RmwFail,
}

/// One memory event in the global interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Position in the global interleaving; equals the index in
    /// [`Trace::events`].
    pub id: EventId,
    /// Issuing thread.
    pub tid: ThreadId,
    /// Read / write / RMW.
    pub kind: EventKind,
    /// Ordering annotation.
    pub annot: Annot,
    /// Word address accessed.
    pub addr: Addr,
    /// Value observed (reads and RMWs; for a write this is 0).
    pub rval: u64,
    /// Value written (writes and successful RMWs; otherwise 0).
    pub wval: u64,
    /// The event that produced the value read, if any; `None` means the
    /// initial memory image. Only meaningful for read effects.
    pub rf: Option<EventId>,
}

impl Event {
    /// True if the event writes memory (a store or a successful RMW).
    #[inline]
    pub fn is_write_effect(&self) -> bool {
        matches!(self.kind, EventKind::Write | EventKind::RmwSuccess)
    }

    /// True if the event reads memory (a load or any RMW).
    #[inline]
    pub fn is_read_effect(&self) -> bool {
        matches!(
            self.kind,
            EventKind::Read | EventKind::RmwSuccess | EventKind::RmwFail
        )
    }

    /// True if the event has acquire semantics (an acquire read, or an
    /// RMW whose annotation includes acquire).
    #[inline]
    pub fn is_acquire(&self) -> bool {
        self.is_read_effect() && self.annot.is_acquire()
    }

    /// True if the event has release semantics (a release write, or a
    /// *successful* RMW whose annotation includes release — a failed RMW
    /// does not write and therefore does not release).
    #[inline]
    pub fn is_release(&self) -> bool {
        self.is_write_effect() && self.annot.is_release()
    }
}

/// High-level data-structure operation kinds, used by the workload
/// harness and by the recovery validators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Set/map insert of `(key, value)`.
    Insert(u64, u64),
    /// Set/map delete of `key`.
    Delete(u64),
    /// Membership query.
    Contains(u64),
    /// Queue enqueue of a value.
    Enqueue(u64),
    /// Queue dequeue.
    Dequeue,
    /// Pre-population / initialization work (excluded from statistics, as
    /// in §6.1 of the paper).
    Setup,
}

/// Marks the extent of one data-structure operation within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMarker {
    /// Thread that performed the operation.
    pub tid: ThreadId,
    /// What the operation was.
    pub op: OpKind,
    /// First event id of the operation (inclusive).
    pub first_event: EventId,
    /// One past the last event id of the operation.
    pub end_event: EventId,
    /// Operation result (1 = success/true, 0 = failure/false, or the
    /// dequeued value + 1 for `Dequeue`, 0 meaning empty).
    pub result: u64,
}

/// A complete recorded execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Number of logical threads.
    pub nthreads: ThreadId,
    /// Global interleaving of memory events; `events[i].id == i`.
    pub events: Vec<Event>,
    /// Memory image (word address → value) at the start of the trace;
    /// words absent from the image read as [`Trace::POISON`].
    pub initial_mem: Vec<(Addr, u64)>,
    /// Operation boundaries in issue order.
    pub markers: Vec<OpMarker>,
    /// Named root addresses of the data structure (for recovery).
    pub roots: Vec<(String, Addr)>,
    /// `[lo, hi)` byte range covered by the trace's heap allocator.
    pub heap_range: (Addr, Addr),
    /// Interned [`OpSite`] labels (`structure/operation[/phase]`); index 0
    /// is always the catch-all `"unknown"` when any labels exist.
    pub site_names: Vec<String>,
    /// Per-event site index into [`Trace::site_names`], parallel to
    /// [`Trace::events`]. Empty when the producer recorded no provenance.
    pub event_sites: Vec<u16>,
}

/// Errors found by [`Trace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// `events[i].id != i`.
    BadId(EventId),
    /// Thread id out of range.
    BadThread(EventId),
    /// `rf` points at a non-write, a later event, a different address, or
    /// a value mismatch.
    BadRf(EventId),
    /// A read's value does not match the most recent write (or initial
    /// image) at that address in the interleaving.
    BadReadValue(EventId),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadId(e) => write!(f, "event {e} has mismatched id"),
            TraceError::BadThread(e) => write!(f, "event {e} has out-of-range thread id"),
            TraceError::BadRf(e) => write!(f, "event {e} has ill-formed reads-from edge"),
            TraceError::BadReadValue(e) => write!(f, "event {e} read a stale value"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Value returned when reading an address that was never written nor
    /// present in the initial image. Chosen to be recognizable so the
    /// recovery validators can detect unpersisted garbage, modelling the
    /// arbitrary contents of freshly allocated NVM.
    pub const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

    /// Creates an empty trace over `nthreads` threads.
    pub fn new(nthreads: ThreadId) -> Self {
        Trace {
            nthreads,
            ..Trace::default()
        }
    }

    /// Event ids of each thread, in program order.
    pub fn per_thread(&self) -> Vec<Vec<EventId>> {
        let mut v = vec![Vec::new(); self.nthreads as usize];
        for e in &self.events {
            v[e.tid as usize].push(e.id);
        }
        v
    }

    /// Looks up the initial value of `addr` ([`Trace::POISON`] if absent).
    pub fn initial_value(&self, addr: Addr) -> u64 {
        self.initial_mem
            .iter()
            .find(|(a, _)| *a == addr)
            .map(|(_, v)| *v)
            .unwrap_or(Trace::POISON)
    }

    /// The memory contents after the whole trace has executed (initial
    /// image plus every write, in interleaving order).
    pub fn final_mem(&self) -> std::collections::HashMap<Addr, u64> {
        let mut m: std::collections::HashMap<Addr, u64> =
            self.initial_mem.iter().copied().collect();
        for e in &self.events {
            if e.is_write_effect() {
                m.insert(e.addr, e.wval);
            }
        }
        m
    }

    /// Checks internal consistency: ids are positional, reads-from edges
    /// are well formed, and every read observes the latest write before it
    /// in the interleaving (the read-value axiom of §2.1 holds for the
    /// recorded total order).
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut last_write: std::collections::HashMap<Addr, (EventId, u64)> =
            std::collections::HashMap::new();
        let init: std::collections::HashMap<Addr, u64> = self.initial_mem.iter().copied().collect();
        for (i, e) in self.events.iter().enumerate() {
            if e.id as usize != i {
                return Err(TraceError::BadId(e.id));
            }
            if e.tid >= self.nthreads {
                return Err(TraceError::BadThread(e.id));
            }
            if e.is_read_effect() {
                match (e.rf, last_write.get(&e.addr)) {
                    (Some(w), Some(&(lw, lv))) => {
                        if w != lw || e.rval != lv {
                            return Err(TraceError::BadRf(e.id));
                        }
                    }
                    (None, None) => {
                        let expect = init.get(&e.addr).copied().unwrap_or(Trace::POISON);
                        if e.rval != expect {
                            return Err(TraceError::BadReadValue(e.id));
                        }
                    }
                    _ => return Err(TraceError::BadRf(e.id)),
                }
            }
            if e.is_write_effect() {
                last_write.insert(e.addr, (e.id, e.wval));
            }
        }
        Ok(())
    }

    /// Number of write effects in the trace.
    pub fn write_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_write_effect()).count()
    }

    /// The site index of event `id` (0 — "unknown" — when the trace
    /// carries no provenance or the id is out of range).
    pub fn site_of(&self, id: EventId) -> u16 {
        self.event_sites.get(id as usize).copied().unwrap_or(0)
    }

    /// The site label of event `id` (`"unknown"` when unlabeled).
    pub fn site_name_of(&self, id: EventId) -> &str {
        self.site_names
            .get(self.site_of(id) as usize)
            .map(String::as_str)
            .unwrap_or("unknown")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::LitmusBuilder;

    #[test]
    fn event_effect_classification() {
        let mut b = LitmusBuilder::new(1);
        let w = b.write(0, 8, 1);
        let r = b.read(0, 8);
        let c = b.cas(0, 8, 1, 2, Annot::AcqRel);
        let f = b.cas(0, 8, 1, 3, Annot::AcqRel); // fails: value is 2
        let t = b.build();
        assert!(t.events[w as usize].is_write_effect());
        assert!(!t.events[w as usize].is_read_effect());
        assert!(t.events[r as usize].is_read_effect());
        assert!(t.events[c as usize].is_write_effect());
        assert!(t.events[c as usize].is_read_effect());
        assert!(t.events[c as usize].is_release());
        assert!(t.events[f as usize].is_read_effect());
        assert!(!t.events[f as usize].is_write_effect());
        assert!(
            !t.events[f as usize].is_release(),
            "failed RMW must not release"
        );
        assert!(
            t.events[f as usize].is_acquire(),
            "failed RMW still acquires"
        );
    }

    #[test]
    fn validate_accepts_wellformed() {
        let mut b = LitmusBuilder::new(2);
        b.write(0, 0x10, 7);
        b.read(1, 0x10);
        let t = b.build();
        t.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_rf() {
        let mut b = LitmusBuilder::new(2);
        b.write(0, 0x10, 7);
        b.read(1, 0x10);
        let mut t = b.build();
        t.events[1].rf = None;
        assert!(matches!(t.validate(), Err(TraceError::BadRf(1))));
    }

    #[test]
    fn validate_rejects_stale_read_of_initial() {
        let mut b = LitmusBuilder::new(1);
        b.read(0, 0x10);
        let mut t = b.build();
        t.events[0].rval = 5; // initial image is empty => POISON expected
        assert!(matches!(t.validate(), Err(TraceError::BadReadValue(0))));
    }

    #[test]
    fn final_mem_applies_writes_in_order() {
        let mut b = LitmusBuilder::new(1);
        b.write(0, 0x10, 1);
        b.write(0, 0x10, 2);
        b.write(0, 0x18, 9);
        let t = b.build();
        let m = t.final_mem();
        assert_eq!(m[&0x10], 2);
        assert_eq!(m[&0x18], 9);
    }

    #[test]
    fn per_thread_partitions_events() {
        let mut b = LitmusBuilder::new(2);
        b.write(0, 0x10, 1);
        b.write(1, 0x18, 2);
        b.write(0, 0x20, 3);
        let t = b.build();
        let pt = t.per_thread();
        assert_eq!(pt[0], vec![0, 2]);
        assert_eq!(pt[1], vec![1]);
    }
}
