//! A builder for hand-written litmus executions.
//!
//! The builder plays the role of a sequentially-consistent interpreter:
//! calls append events to the global interleaving in call order, and
//! reads-from edges are derived from the current memory contents, so the
//! resulting [`Trace`] always satisfies the read-value axiom.

use crate::event::{Event, EventKind, Trace};
use crate::types::{Addr, Annot, EventId, ThreadId};
use std::collections::HashMap;

/// Incrementally constructs a [`Trace`] for tests and documentation.
#[derive(Debug, Default)]
pub struct LitmusBuilder {
    nthreads: ThreadId,
    events: Vec<Event>,
    mem: HashMap<Addr, (u64, Option<EventId>)>,
    initial: Vec<(Addr, u64)>,
}

impl LitmusBuilder {
    /// Creates a builder for an execution with `nthreads` threads.
    pub fn new(nthreads: ThreadId) -> Self {
        LitmusBuilder {
            nthreads,
            ..LitmusBuilder::default()
        }
    }

    /// Seeds the initial memory image with `addr = val`.
    pub fn init(&mut self, addr: Addr, val: u64) -> &mut Self {
        self.initial.push((addr, val));
        self.mem.insert(addr, (val, None));
        self
    }

    fn current(&self, addr: Addr) -> (u64, Option<EventId>) {
        self.mem
            .get(&addr)
            .copied()
            .unwrap_or((Trace::POISON, None))
    }

    fn push(&mut self, e: Event) -> EventId {
        let id = e.id;
        self.events.push(e);
        id
    }

    /// Appends a read by `tid` of `addr` with annotation `annot`,
    /// returning the event id.
    pub fn read_annot(&mut self, tid: ThreadId, addr: Addr, annot: Annot) -> EventId {
        let (val, rf) = self.current(addr);
        let id = self.events.len() as EventId;
        self.push(Event {
            id,
            tid,
            kind: EventKind::Read,
            annot,
            addr,
            rval: val,
            wval: 0,
            rf,
        })
    }

    /// Appends a plain read.
    pub fn read(&mut self, tid: ThreadId, addr: Addr) -> EventId {
        self.read_annot(tid, addr, Annot::Plain)
    }

    /// Appends an acquire read.
    pub fn read_acq(&mut self, tid: ThreadId, addr: Addr) -> EventId {
        self.read_annot(tid, addr, Annot::Acquire)
    }

    /// Appends a write by `tid` of `val` to `addr` with annotation
    /// `annot`, returning the event id.
    pub fn write_annot(&mut self, tid: ThreadId, addr: Addr, val: u64, annot: Annot) -> EventId {
        let id = self.events.len() as EventId;
        let id = self.push(Event {
            id,
            tid,
            kind: EventKind::Write,
            annot,
            addr,
            rval: 0,
            wval: val,
            rf: None,
        });
        self.mem.insert(addr, (val, Some(id)));
        id
    }

    /// Appends a plain write.
    pub fn write(&mut self, tid: ThreadId, addr: Addr, val: u64) -> EventId {
        self.write_annot(tid, addr, val, Annot::Plain)
    }

    /// Appends a release write.
    pub fn write_rel(&mut self, tid: ThreadId, addr: Addr, val: u64) -> EventId {
        self.write_annot(tid, addr, val, Annot::Release)
    }

    /// Appends a compare-and-swap; the success/failure outcome is
    /// determined by the current memory contents. Returns the event id.
    pub fn cas(&mut self, tid: ThreadId, addr: Addr, old: u64, new: u64, annot: Annot) -> EventId {
        let (val, rf) = self.current(addr);
        let ok = val == old;
        let id = self.events.len() as EventId;
        let id = self.push(Event {
            id,
            tid,
            kind: if ok {
                EventKind::RmwSuccess
            } else {
                EventKind::RmwFail
            },
            annot,
            addr,
            rval: val,
            wval: if ok { new } else { 0 },
            rf,
        });
        if ok {
            self.mem.insert(addr, (new, Some(id)));
        }
        id
    }

    /// Finalizes the trace.
    pub fn build(self) -> Trace {
        Trace {
            nthreads: self.nthreads,
            events: self.events,
            initial_mem: self.initial,
            markers: Vec::new(),
            roots: Vec::new(),
            heap_range: (0, 0),
            site_names: Vec::new(),
            event_sites: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_traces_validate() {
        let mut b = LitmusBuilder::new(2);
        b.init(0x10, 5);
        b.read(1, 0x10);
        b.write(0, 0x10, 6);
        b.read_acq(1, 0x10);
        b.cas(0, 0x10, 6, 7, Annot::AcqRel);
        b.cas(1, 0x10, 6, 8, Annot::AcqRel); // fails
        b.build().validate().unwrap();
    }

    #[test]
    fn cas_outcome_follows_memory() {
        let mut b = LitmusBuilder::new(1);
        b.init(0x8, 1);
        let ok = b.cas(0, 0x8, 1, 2, Annot::Release);
        let fail = b.cas(0, 0x8, 1, 3, Annot::Release);
        let t = b.build();
        assert_eq!(t.events[ok as usize].kind, EventKind::RmwSuccess);
        assert_eq!(t.events[fail as usize].kind, EventKind::RmwFail);
        assert_eq!(t.events[fail as usize].rval, 2);
    }

    #[test]
    fn reads_of_unwritten_memory_are_poison() {
        let mut b = LitmusBuilder::new(1);
        let r = b.read(0, 0x1000);
        let t = b.build();
        assert_eq!(t.events[r as usize].rval, Trace::POISON);
    }
}
