//! Chunked bump arena for per-run trace storage.
//!
//! A [`Vec`] doubles when it grows: recording an N-event trace copies
//! ~2N events through realloc and leaves up to 2x slack. The arena
//! stores elements in fixed-size chunks that never move — a push past
//! the end allocates one new chunk and nothing is copied — so
//! steady-state recording does one allocation per [`CHUNK`] elements
//! instead of one logarithmic resize ladder, and previously recorded
//! elements stay put (stable addresses for the lifetime of the arena).
//!
//! [`Arena::into_vec`] flattens to a contiguous `Vec` in one exact
//! allocation at end of run, which is how the arena-backed recorder
//! hands a finished [`Trace`](crate::Trace) to the rest of the
//! pipeline without changing its public shape.

use std::ops::Index;

/// Elements per chunk. 4096 events ≈ 256 KiB per chunk at the 64-byte
/// `Event` size — large enough that chunk allocation is measurement
/// noise, small enough that a tiny unit-test trace wastes little.
pub const CHUNK: usize = 4096;

/// A grow-only chunked store; see the module docs.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    chunks: Vec<Vec<T>>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena (allocates nothing until the first push).
    pub fn new() -> Self {
        Arena {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element; allocates only on a chunk boundary.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.len.is_multiple_of(CHUNK) {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        // The last chunk exists and has room by the check above.
        self.chunks.last_mut().unwrap().push(value);
        self.len += 1;
    }

    /// The element at `index`, if in bounds.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        Some(&self.chunks[index / CHUNK][index % CHUNK])
    }

    /// Iterates elements in push order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flatten()
    }

    /// Flattens into a contiguous `Vec` with one exact allocation.
    pub fn into_vec(self) -> Vec<T> {
        let mut v = Vec::with_capacity(self.len);
        for chunk in self.chunks {
            v.extend(chunk);
        }
        v
    }
}

impl<T> Index<usize> for Arena<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        self.get(index).expect("arena index out of bounds")
    }
}

impl<T> FromIterator<T> for Arena<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut a = Arena::new();
        for v in iter {
            a.push(v);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_round_trip() {
        let mut a = Arena::new();
        assert!(a.is_empty());
        for i in 0..(CHUNK * 2 + 17) {
            a.push(i);
        }
        assert_eq!(a.len(), CHUNK * 2 + 17);
        assert_eq!(a[0], 0);
        assert_eq!(a[CHUNK], CHUNK); // first element of chunk 1
        assert_eq!(a.get(a.len()), None);
        let collected: Vec<usize> = a.iter().copied().collect();
        assert_eq!(collected, (0..CHUNK * 2 + 17).collect::<Vec<_>>());
        assert_eq!(a.into_vec(), (0..CHUNK * 2 + 17).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_never_move_on_growth() {
        let mut a = Arena::new();
        a.push(7u64);
        let p = &a[0] as *const u64;
        for i in 0..CHUNK * 3 {
            a.push(i as u64);
        }
        assert_eq!(&a[0] as *const u64, p, "early elements must not move");
    }
}
