//! Plain-text (de)serialization for [`Trace`].
//!
//! A deliberately simple line-oriented format (no external serialization
//! dependencies) used to cache generated traces between the executor and
//! the benchmark harness, and to ship small repro traces in tests.

use crate::event::{Event, EventKind, OpKind, OpMarker, Trace};
use crate::types::Annot;
use std::fmt::Write as _;

/// Error produced when parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn kind_char(k: EventKind) -> char {
    match k {
        EventKind::Read => 'R',
        EventKind::Write => 'W',
        EventKind::RmwSuccess => 'C',
        EventKind::RmwFail => 'F',
    }
}

fn annot_char(a: Annot) -> char {
    match a {
        Annot::Plain => 'p',
        Annot::Acquire => 'a',
        Annot::Release => 'r',
        Annot::AcqRel => 'x',
    }
}

/// Serializes a trace to the text format.
pub fn to_text(t: &Trace) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "lrp-trace v1");
    let _ = writeln!(s, "threads {}", t.nthreads);
    let _ = writeln!(s, "heap {} {}", t.heap_range.0, t.heap_range.1);
    for (name, a) in &t.roots {
        let _ = writeln!(s, "root {name} {a}");
    }
    for (a, v) in &t.initial_mem {
        let _ = writeln!(s, "init {a} {v}");
    }
    for e in &t.events {
        let rf = e.rf.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
        let _ = writeln!(
            s,
            "e {} {} {} {} {} {} {}",
            e.tid,
            kind_char(e.kind),
            annot_char(e.annot),
            e.addr,
            e.rval,
            e.wval,
            rf
        );
    }
    for m in &t.markers {
        let op = match m.op {
            OpKind::Insert(k, v) => format!("I {k} {v}"),
            OpKind::Delete(k) => format!("D {k}"),
            OpKind::Contains(k) => format!("Q {k}"),
            OpKind::Enqueue(v) => format!("E {v}"),
            OpKind::Dequeue => "X".into(),
            OpKind::Setup => "S".into(),
        };
        let _ = writeln!(
            s,
            "m {} {} {} {} {}",
            m.tid, op, m.first_event, m.end_event, m.result
        );
    }
    s
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

fn num(f: &mut std::str::SplitWhitespace<'_>, ln: usize, what: &str) -> Result<u64, ParseError> {
    f.next()
        .ok_or_else(|| err(ln, format!("missing {what}")))?
        .parse::<u64>()
        .map_err(|_| err(ln, format!("bad {what}")))
}

/// Parses a trace from the text format produced by [`to_text`].
pub fn from_text(input: &str) -> Result<Trace, ParseError> {
    let mut lines = input.lines().enumerate();
    let (ln, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if header.trim() != "lrp-trace v1" {
        return Err(err(ln + 1, "bad header"));
    }
    let mut t = Trace::new(0);
    for (i, raw) in lines {
        let ln = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_whitespace();
        let tag = f.next().unwrap();
        match tag {
            "threads" => t.nthreads = num(&mut f, ln, "thread count")? as u16,
            "heap" => t.heap_range = (num(&mut f, ln, "heap lo")?, num(&mut f, ln, "heap hi")?),
            "root" => {
                let name = f
                    .next()
                    .ok_or_else(|| err(ln, "missing root name"))?
                    .to_string();
                let a = f
                    .next()
                    .ok_or_else(|| err(ln, "missing root addr"))?
                    .parse()
                    .map_err(|_| err(ln, "bad root addr"))?;
                t.roots.push((name, a));
            }
            "init" => {
                let a = num(&mut f, ln, "init addr")?;
                let v = num(&mut f, ln, "init val")?;
                t.initial_mem.push((a, v));
            }
            "e" => {
                let tid = num(&mut f, ln, "tid")? as u16;
                let kind = match f.next() {
                    Some("R") => EventKind::Read,
                    Some("W") => EventKind::Write,
                    Some("C") => EventKind::RmwSuccess,
                    Some("F") => EventKind::RmwFail,
                    _ => return Err(err(ln, "bad event kind")),
                };
                let annot = match f.next() {
                    Some("p") => Annot::Plain,
                    Some("a") => Annot::Acquire,
                    Some("r") => Annot::Release,
                    Some("x") => Annot::AcqRel,
                    _ => return Err(err(ln, "bad annotation")),
                };
                let addr = num(&mut f, ln, "addr")?;
                let rval = num(&mut f, ln, "rval")?;
                let wval = num(&mut f, ln, "wval")?;
                let rf = match f.next() {
                    Some("-") => None,
                    Some(x) => Some(x.parse().map_err(|_| err(ln, "bad rf"))?),
                    None => return Err(err(ln, "missing rf")),
                };
                t.events.push(Event {
                    id: t.events.len() as u32,
                    tid,
                    kind,
                    annot,
                    addr,
                    rval,
                    wval,
                    rf,
                });
            }
            "m" => {
                let tid = num(&mut f, ln, "tid")? as u16;
                let op = match f.next() {
                    Some("I") => OpKind::Insert(num(&mut f, ln, "key")?, num(&mut f, ln, "val")?),
                    Some("D") => OpKind::Delete(num(&mut f, ln, "key")?),
                    Some("Q") => OpKind::Contains(num(&mut f, ln, "key")?),
                    Some("E") => OpKind::Enqueue(num(&mut f, ln, "val")?),
                    Some("X") => OpKind::Dequeue,
                    Some("S") => OpKind::Setup,
                    _ => return Err(err(ln, "bad op kind")),
                };
                t.markers.push(OpMarker {
                    tid,
                    op,
                    first_event: num(&mut f, ln, "first")? as u32,
                    end_event: num(&mut f, ln, "end")? as u32,
                    result: num(&mut f, ln, "result")?,
                });
            }
            _ => return Err(err(ln, format!("unknown tag {tag}"))),
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::LitmusBuilder;

    fn sample() -> Trace {
        let mut b = LitmusBuilder::new(2);
        b.init(0x200, 0);
        b.write(0, 0x100, 42);
        b.cas(0, 0x200, 0, 0x100, Annot::AcqRel);
        b.cas(1, 0x200, 0x100, 0x300, Annot::AcqRel);
        b.read_acq(1, 0x200);
        let mut t = b.build();
        t.roots.push(("head".into(), 0x200));
        t.heap_range = (0x100, 0x400);
        t.markers.push(OpMarker {
            tid: 0,
            op: OpKind::Insert(1, 2),
            first_event: 0,
            end_event: 2,
            result: 1,
        });
        t.markers.push(OpMarker {
            tid: 1,
            op: OpKind::Dequeue,
            first_event: 2,
            end_event: 4,
            result: 0,
        });
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let s = to_text(&t);
        let u = from_text(&s).unwrap();
        assert_eq!(t.nthreads, u.nthreads);
        assert_eq!(t.events, u.events);
        assert_eq!(t.initial_mem, u.initial_mem);
        assert_eq!(t.markers, u.markers);
        assert_eq!(t.roots, u.roots);
        assert_eq!(t.heap_range, u.heap_range);
        u.validate().unwrap();
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_text("nope").is_err());
        assert!(from_text("").is_err());
    }

    #[test]
    fn rejects_malformed_event() {
        let bad = "lrp-trace v1\nthreads 1\ne 0 Z p 1 0 0 -\n";
        let e = from_text(bad).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let s = "lrp-trace v1\n# comment\n\nthreads 3\n";
        let t = from_text(s).unwrap();
        assert_eq!(t.nthreads, 3);
    }
}
