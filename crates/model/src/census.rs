//! Trace statistics: the census used by the CLI tools, the examples,
//! and the experiment reports.

use crate::event::Trace;
use crate::types::{line_of, LineAddr, ThreadId};
use std::collections::{BTreeMap, HashSet};

/// Aggregate counts over a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Census {
    /// Total events.
    pub events: usize,
    /// Read effects (loads + RMWs).
    pub reads: usize,
    /// Write effects (stores + successful RMWs).
    pub writes: usize,
    /// Successful RMWs.
    pub rmw_success: usize,
    /// Failed RMWs.
    pub rmw_fail: usize,
    /// Acquire-annotated read effects.
    pub acquires: usize,
    /// Release-annotated write effects.
    pub releases: usize,
    /// Events per thread.
    pub per_thread: BTreeMap<ThreadId, usize>,
    /// Distinct 64 B cache lines touched.
    pub lines_touched: usize,
    /// Distinct lines written.
    pub lines_written: usize,
    /// Operation markers, by kind name.
    pub ops: BTreeMap<&'static str, usize>,
}

impl Census {
    /// Computes the census of a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut c = Census {
            events: trace.events.len(),
            ..Census::default()
        };
        let mut touched: HashSet<LineAddr> = HashSet::new();
        let mut written: HashSet<LineAddr> = HashSet::new();
        for e in &trace.events {
            if e.is_read_effect() {
                c.reads += 1;
            }
            if e.is_write_effect() {
                c.writes += 1;
                written.insert(line_of(e.addr));
            }
            match e.kind {
                crate::event::EventKind::RmwSuccess => c.rmw_success += 1,
                crate::event::EventKind::RmwFail => c.rmw_fail += 1,
                _ => {}
            }
            if e.is_acquire() {
                c.acquires += 1;
            }
            if e.is_release() {
                c.releases += 1;
            }
            *c.per_thread.entry(e.tid).or_insert(0) += 1;
            touched.insert(line_of(e.addr));
        }
        c.lines_touched = touched.len();
        c.lines_written = written.len();
        for m in &trace.markers {
            let name = match m.op {
                crate::event::OpKind::Insert(..) => "insert",
                crate::event::OpKind::Delete(..) => "delete",
                crate::event::OpKind::Contains(..) => "contains",
                crate::event::OpKind::Enqueue(..) => "enqueue",
                crate::event::OpKind::Dequeue => "dequeue",
                crate::event::OpKind::Setup => "setup",
            };
            *c.ops.entry(name).or_insert(0) += 1;
        }
        c
    }
}

impl std::fmt::Display for Census {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} events: {} reads, {} writes ({} rmw ok, {} rmw fail)",
            self.events, self.reads, self.writes, self.rmw_success, self.rmw_fail
        )?;
        writeln!(
            f,
            "annotations: {} acquires, {} releases",
            self.acquires, self.releases
        )?;
        writeln!(
            f,
            "footprint: {} lines touched, {} lines written",
            self.lines_touched, self.lines_written
        )?;
        write!(f, "threads:")?;
        for (t, n) in &self.per_thread {
            write!(f, " t{t}={n}")?;
        }
        if !self.ops.is_empty() {
            write!(f, "\nops:")?;
            for (k, n) in &self.ops {
                write!(f, " {k}={n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::LitmusBuilder;
    use crate::types::Annot;

    #[test]
    fn census_counts_everything() {
        let mut b = LitmusBuilder::new(2);
        b.init(0x100, 0);
        b.write(0, 0x100, 1);
        b.write_rel(0, 0x140, 2);
        b.read_acq(1, 0x140);
        b.cas(1, 0x100, 1, 2, Annot::Release);
        b.cas(1, 0x100, 1, 3, Annot::Release); // fails
        let t = b.build();
        let c = Census::of(&t);
        assert_eq!(c.events, 5);
        assert_eq!(c.reads, 3); // acq read + two CAS reads
        assert_eq!(c.writes, 3); // write + rel + successful CAS
        assert_eq!(c.rmw_success, 1);
        assert_eq!(c.rmw_fail, 1);
        assert_eq!(c.acquires, 1);
        assert_eq!(c.releases, 2);
        assert_eq!(c.per_thread[&0], 2);
        assert_eq!(c.per_thread[&1], 3);
        assert_eq!(c.lines_touched, 2);
        assert_eq!(c.lines_written, 2);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let mut b = LitmusBuilder::new(1);
        b.write(0, 0x100, 1);
        let s = Census::of(&b.build()).to_string();
        assert!(s.contains("1 events"));
        assert!(s.contains("t0=1"));
    }

    #[test]
    fn empty_trace_census() {
        let c = Census::of(&Trace::new(3));
        assert_eq!(c.events, 0);
        assert_eq!(c.lines_touched, 0);
    }
}
