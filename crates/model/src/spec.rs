//! Persistency-model specifications as checkable predicates over persist
//! schedules.
//!
//! A [`PersistSchedule`] assigns each write event an optional *persist
//! stamp*: the sequence number of the NVM flush that made its effect
//! durable. Equal stamps mean the writes became durable atomically (they
//! rode the same cache-line flush); `None` means the write never became
//! durable before the end of the execution.
//!
//! [`check_rp`] verifies **Release Persistency** (§4.1 of the paper) by
//! checking exactly its generator rules; because a schedule is a total
//! order, the generator rules imply the transitive closure, so no
//! happens-before closure is required and the check streams in O(n).
//!
//! [`check_arp`] verifies only the weaker **ARP rule** (§3.1):
//! `W po→ Rel sw→ Acq po→ W' ⇒ W p→ W'` — notably, it does *not* require
//! a release to persist after the writes that precede it, which is the
//! gap Figure 1 of the paper exploits.
//!
//! [`check_cut_closure`] verifies the Izraelevitz–Scott criterion used
//! for null recovery: every stamp-prefix of the schedule is a
//! *consistent cut* of happens-before.

use crate::event::Trace;
use crate::hb::HbClosure;
use crate::types::{EventId, ThreadId};
use std::collections::HashSet;

/// Assignment of persist stamps to write events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistSchedule {
    stamps: Vec<Option<u64>>,
}

impl PersistSchedule {
    /// A schedule over `n` events in which nothing has persisted.
    pub fn new(n: usize) -> Self {
        PersistSchedule {
            stamps: vec![None; n],
        }
    }

    /// Builds a schedule from an explicit persist order: `order[i]`
    /// receives stamp `i`.
    pub fn from_order(n: usize, order: &[EventId]) -> Self {
        let mut s = Self::new(n);
        for (i, &e) in order.iter().enumerate() {
            s.set(e, i as u64);
        }
        s
    }

    /// Records that event `e` persisted at stamp `stamp`.
    pub fn set(&mut self, e: EventId, stamp: u64) {
        self.stamps[e as usize] = Some(stamp);
    }

    /// The stamp of event `e`, if it persisted.
    pub fn stamp(&self, e: EventId) -> Option<u64> {
        self.stamps[e as usize]
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True if the schedule covers no events.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// The set of writes with stamp `<= cut` (the durable state if a
    /// crash happens just after flush `cut` completes).
    pub fn cut_at(&self, trace: &Trace, cut: u64) -> HashSet<EventId> {
        trace
            .events
            .iter()
            .filter(|e| e.is_write_effect())
            .filter(|e| matches!(self.stamps[e.id as usize], Some(s) if s <= cut))
            .map(|e| e.id)
            .collect()
    }

    /// All distinct stamps in ascending order.
    pub fn distinct_stamps(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.stamps.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Extended stamp domain with `None` treated as "never" (+∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ext {
    Fin(u64),
    Inf,
}

fn ext(s: Option<u64>) -> Ext {
    match s {
        Some(v) => Ext::Fin(v),
        None => Ext::Inf,
    }
}

/// Which RP rule a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpRule {
    /// `W po→ Rel ⇒ W p→ Rel` (release one-sided barrier, §4.1).
    ReleaseBarrier,
    /// `Rel sw→ Acq po→ W ⇒ Rel p→ W` (sw plus acquire one-sided barrier).
    AcquireBarrier,
    /// `W1 po→ W2` same address `⇒ W1 p→ W2`.
    SameAddr,
}

/// A persist-order violation: `first` was required to persist no later
/// than `second` but did not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The event that had to persist first.
    pub first: EventId,
    /// The event that persisted too early.
    pub second: EventId,
    /// The violated rule.
    pub rule: RpRule,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: event {} must persist before event {}",
            self.rule, self.first, self.second
        )
    }
}

const MAX_REPORTED: usize = 16;

/// Checks the Release Persistency rules of §4.1 against a schedule.
///
/// Implements the paper's *expanded* rules (the ones a microarchitecture
/// can enforce) as a single streaming recurrence: for every event, the
/// maximum persist stamp over its persist-order predecessors is
/// propagated through the rule edges — prior acquires (acquire one-sided
/// barrier), prior writes at a release (release one-sided barrier), the
/// previous write to the same address, and the release an acquire reads
/// from (synchronizes-with). A write whose own stamp is smaller than the
/// propagated bound is a violation.
///
/// Note the deliberate fidelity point: the paper's succinct statement
/// ("any two writes in happens-before persist in that order") is
/// *stronger* than its expanded rules — full RC happens-before contains
/// read-mediated same-address edges (e.g. an acquire reading the
/// thread's own plain write) that no rule lifts into persist order and
/// that LRP's hardware does not enforce. This checker implements the
/// expanded (implementable) specification; [`check_cut_closure`] paired
/// with [`HbClosure::compute_persist`] is its closure-based equivalent.
///
/// Returns the first few violations (capped) on failure.
pub fn check_rp(trace: &Trace, sched: &PersistSchedule) -> Result<(), Vec<Violation>> {
    assert_eq!(
        sched.len(),
        trace.events.len(),
        "schedule/trace size mismatch"
    );
    let nt = trace.nthreads as usize;
    let n = trace.events.len();
    let mut viol = Vec::new();
    // folded[e]: max stamp over ({e} if write) ∪ persist-predecessors(e).
    let mut folded: Vec<Option<(Ext, EventId, RpRule)>> = vec![None; n];
    // Per-thread aggregates over folded values.
    let mut all_w: Vec<Option<(Ext, EventId, RpRule)>> = vec![None; nt];
    let mut acqs: Vec<Option<(Ext, EventId, RpRule)>> = vec![None; nt];
    let mut last_w: std::collections::HashMap<(ThreadId, u64), (Ext, EventId, RpRule)> =
        std::collections::HashMap::new();

    fn join(
        b: &mut Option<(Ext, EventId, RpRule)>,
        other: Option<(Ext, EventId, RpRule)>,
        rule: Option<RpRule>,
    ) {
        if let Some((e2, src, r2)) = other {
            let r = rule.unwrap_or(r2);
            match b {
                Some((e1, _, _)) if *e1 >= e2 => {}
                _ => *b = Some((e2, src, r)),
            }
        }
    }

    for e in &trace.events {
        let t = e.tid as usize;
        let s = ext(sched.stamp(e.id));
        let mut bound: Option<(Ext, EventId, RpRule)> = None;
        // Acquire one-sided barrier: every earlier acquire of this thread
        // bounds everything after it.
        join(&mut bound, acqs[t], Some(RpRule::AcquireBarrier));
        // Release one-sided barrier: every earlier write of this thread
        // bounds a release.
        if e.is_release() {
            join(&mut bound, all_w[t], Some(RpRule::ReleaseBarrier));
        }
        // Program-order address dependency (writes to one address; a
        // read at the same address inherits nothing — no §4.1 rule
        // orders a write before a later read, even an acquire).
        if e.is_write_effect() {
            if let Some(&lw) = last_w.get(&(e.tid, e.addr)) {
                join(&mut bound, Some(lw), Some(RpRule::SameAddr));
            }
        }
        // Synchronizes-with: an acquire inherits the release it read.
        if e.is_acquire() {
            if let Some(w) = e.rf {
                let we = &trace.events[w as usize];
                if we.is_release() && we.tid != e.tid {
                    join(&mut bound, folded[w as usize], Some(RpRule::AcquireBarrier));
                }
            }
        }
        // The check: a persisted write may not beat its bound.
        if e.is_write_effect() {
            if let (Some((b, src, rule)), Ext::Fin(_)) = (bound, s) {
                if b > s {
                    viol.push(Violation {
                        first: src,
                        second: e.id,
                        rule,
                    });
                    if viol.len() >= MAX_REPORTED {
                        break;
                    }
                }
            }
        }
        // Fold the event's own stamp (writes only) and update aggregates.
        let mut f = bound;
        if e.is_write_effect() {
            join(&mut f, Some((s, e.id, RpRule::SameAddr)), None);
        }
        folded[e.id as usize] = f;
        if e.is_write_effect() {
            join(&mut all_w[t], f, None);
            last_w.insert((e.tid, e.addr), f.expect("write folds its own stamp"));
        }
        if e.is_acquire() {
            join(&mut acqs[t], f, Some(RpRule::AcquireBarrier));
        }
    }
    if viol.is_empty() {
        Ok(())
    } else {
        Err(viol)
    }
}

/// Checks only the ARP rule of §3.1:
/// `W po→ Rel sw→ Acq po→ W' ⇒ W p→ W'`.
pub fn check_arp(trace: &Trace, sched: &PersistSchedule) -> Result<(), Vec<Violation>> {
    assert_eq!(
        sched.len(),
        trace.events.len(),
        "schedule/trace size mismatch"
    );
    let nt = trace.nthreads as usize;
    // Pass 1: for each release, the max stamp over writes strictly
    // po-before it in its thread.
    let mut relmax: std::collections::HashMap<EventId, (Ext, Option<EventId>)> =
        std::collections::HashMap::new();
    {
        let mut maxw: Vec<Option<(Ext, EventId)>> = vec![None; nt];
        for e in &trace.events {
            let t = e.tid as usize;
            if e.is_release() {
                let m = maxw[t]
                    .map(|(m, src)| (m, Some(src)))
                    .unwrap_or((Ext::Fin(0), None));
                relmax.insert(e.id, m);
            }
            if e.is_write_effect() {
                let s = ext(sched.stamp(e.id));
                match maxw[t] {
                    Some((m, _)) if m >= s => {}
                    _ => maxw[t] = Some((s, e.id)),
                }
            }
        }
    }
    // Pass 2: propagate lower bounds through sw edges.
    let mut viol = Vec::new();
    let mut lb: Vec<Option<(Ext, EventId)>> = vec![None; nt];
    for e in &trace.events {
        let t = e.tid as usize;
        if e.is_write_effect() {
            if let (Some((b, src)), Ext::Fin(_)) = (lb[t], ext(sched.stamp(e.id))) {
                if b > ext(sched.stamp(e.id)) {
                    viol.push(Violation {
                        first: src,
                        second: e.id,
                        rule: RpRule::AcquireBarrier,
                    });
                    if viol.len() >= MAX_REPORTED {
                        break;
                    }
                }
            }
        }
        if e.is_acquire() {
            if let Some(w) = e.rf {
                let we = &trace.events[w as usize];
                if we.is_release() && we.tid != e.tid {
                    if let Some(&(m, Some(src))) = relmax.get(&w) {
                        match lb[t] {
                            Some((b, _)) if b >= m => {}
                            _ => lb[t] = Some((m, src)),
                        }
                    }
                }
            }
        }
    }
    if viol.is_empty() {
        Ok(())
    } else {
        Err(viol)
    }
}

/// Checks the *intra-thread full persist barrier* semantics that the
/// strict and buffered barriers (SB/BB, §6.2) enforce by surrounding
/// every release with barriers: for each thread, every write that
/// precedes a release in program order persists no later than the
/// release, and the release persists no later than any write that
/// follows it. This is strictly stronger than RP — Figure 2's point is
/// precisely that RP does **not** require it, so LRP schedules may fail
/// this check while satisfying [`check_rp`].
pub fn check_epoch_full_barrier(
    trace: &Trace,
    sched: &PersistSchedule,
) -> Result<(), Vec<Violation>> {
    assert_eq!(
        sched.len(),
        trace.events.len(),
        "schedule/trace size mismatch"
    );
    let nt = trace.nthreads as usize;
    let mut viol = Vec::new();
    // Per thread: max stamp over earlier segments (lower bound for later
    // writes) and the running max of the current segment. Same-address
    // program order also holds under any epoch model (writes to one
    // line coalesce or persist in order).
    let mut seg_lb: Vec<Option<(Ext, EventId)>> = vec![None; nt];
    let mut cur_max: Vec<Option<(Ext, EventId)>> = vec![None; nt];
    let mut last_w: std::collections::HashMap<(ThreadId, u64), EventId> =
        std::collections::HashMap::new();
    for e in &trace.events {
        if !e.is_write_effect() {
            continue;
        }
        let t = e.tid as usize;
        let s = ext(sched.stamp(e.id));
        if let (Some((b, src)), Ext::Fin(_)) = (seg_lb[t], s) {
            if b > s {
                viol.push(Violation {
                    first: src,
                    second: e.id,
                    rule: RpRule::ReleaseBarrier,
                });
                if viol.len() >= MAX_REPORTED {
                    break;
                }
            }
        }
        if let Some(&p) = last_w.get(&(e.tid, e.addr)) {
            if let Ext::Fin(_) = s {
                if ext(sched.stamp(p)) > s {
                    viol.push(Violation {
                        first: p,
                        second: e.id,
                        rule: RpRule::SameAddr,
                    });
                    if viol.len() >= MAX_REPORTED {
                        break;
                    }
                }
            }
        }
        last_w.insert((e.tid, e.addr), e.id);
        if e.is_release() {
            // The barrier sits *before* the release: every earlier write
            // of the segment must persist no later than the release
            // itself.
            if let (Some((m, src)), Ext::Fin(_)) = (cur_max[t], s) {
                if m > s {
                    viol.push(Violation {
                        first: src,
                        second: e.id,
                        rule: RpRule::ReleaseBarrier,
                    });
                    if viol.len() >= MAX_REPORTED {
                        break;
                    }
                }
            }
        }
        match cur_max[t] {
            Some((m, _)) if m >= s => {}
            _ => cur_max[t] = Some((s, e.id)),
        }
        if e.is_release() {
            // Barrier after the release: everything so far lower-bounds
            // the next segment.
            seg_lb[t] = cur_max[t];
        }
    }
    if viol.is_empty() {
        Ok(())
    } else {
        Err(viol)
    }
}

/// Checks stamp monotonicity along explicit persist-order `edges`:
/// returns the first `(first, second)` pair with `stamp(first) >
/// stamp(second)` (unpersisted = +∞) — i.e. `second` became durable
/// while `first`, which the order requires to persist no later, had
/// not. `None` means every edge is respected.
pub fn check_stamp_edges(
    sched: &PersistSchedule,
    edges: impl IntoIterator<Item = (EventId, EventId)>,
) -> Option<(EventId, EventId)> {
    edges
        .into_iter()
        .find(|&(a, b)| ext(sched.stamp(a)) > ext(sched.stamp(b)))
}

/// A consistent-cut violation: `present` is durable while its
/// happens-before predecessor `missing` is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutViolation {
    /// Durable write.
    pub present: EventId,
    /// Its non-durable hb-predecessor write.
    pub missing: EventId,
}

/// Checks that `cut` (a set of durable writes) is a consistent cut: it is
/// closed under happens-before predecessors among writes.
pub fn check_consistent_cut(
    trace: &Trace,
    hb: &HbClosure,
    cut: &HashSet<EventId>,
) -> Result<(), CutViolation> {
    for &w in cut {
        for p in hb.preds_of(w) {
            if trace.events[p as usize].is_write_effect() && !cut.contains(&p) {
                return Err(CutViolation {
                    present: w,
                    missing: p,
                });
            }
        }
    }
    Ok(())
}

/// Checks that *every* stamp-prefix of the schedule is a consistent cut,
/// i.e. for every pair of writes `w1 hb→ w2`, `stamp(w1) <= stamp(w2)`
/// (with unpersisted treated as +∞). This is the paper's recovery
/// criterion for the whole execution.
pub fn check_cut_closure(
    trace: &Trace,
    hb: &HbClosure,
    sched: &PersistSchedule,
) -> Result<(), CutViolation> {
    for e in &trace.events {
        if !e.is_write_effect() {
            continue;
        }
        let s2 = ext(sched.stamp(e.id));
        if s2 == Ext::Inf {
            continue;
        }
        for p in hb.preds_of(e.id) {
            if trace.events[p as usize].is_write_effect() && ext(sched.stamp(p)) > s2 {
                return Err(CutViolation {
                    present: e.id,
                    missing: p,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::LitmusBuilder;
    use crate::types::Annot;

    /// Figure 1 message-passing trace: W1; Rel || Acq; W4.
    fn fig1() -> (Trace, EventId, EventId, EventId, EventId) {
        let mut b = LitmusBuilder::new(2);
        b.init(0x200, 0);
        let w1 = b.write(0, 0x100, 42);
        let rel = b.cas(0, 0x200, 0, 0x100, Annot::AcqRel);
        let acq = b.cas(1, 0x200, 0x100, 0x300, Annot::AcqRel);
        let w4 = b.write(1, 0x310, 9);
        (b.build(), w1, rel, acq, w4)
    }

    #[test]
    fn rp_accepts_hb_respecting_schedule() {
        let (t, w1, rel, acq, w4) = fig1();
        let sched = PersistSchedule::from_order(t.events.len(), &[w1, rel, acq, w4]);
        check_rp(&t, &sched).unwrap();
        check_arp(&t, &sched).unwrap();
    }

    #[test]
    fn rmw_acquire_write_must_persist_before_later_writes() {
        // The acquire-CAS's own write (the link update of the acquiring
        // thread) must persist before the thread's subsequent writes.
        let (t, w1, rel, acq, w4) = fig1();
        let sched = PersistSchedule::from_order(t.events.len(), &[w1, rel, w4, acq]);
        let v = check_rp(&t, &sched).unwrap_err();
        assert!(v
            .iter()
            .any(|v| v.rule == RpRule::AcquireBarrier && v.first == acq && v.second == w4));
    }

    #[test]
    fn rp_rejects_release_before_preceding_write() {
        let (t, w1, rel, _acq, w4) = fig1();
        let sched = PersistSchedule::from_order(t.events.len(), &[rel, w1, w4]);
        let v = check_rp(&t, &sched).unwrap_err();
        assert!(v
            .iter()
            .any(|v| v.rule == RpRule::ReleaseBarrier && v.first == w1 && v.second == rel));
        // But ARP allows it — this is exactly the paper's complaint (§3.1.1).
        check_arp(&t, &sched).unwrap();
    }

    #[test]
    fn rp_rejects_acquirer_write_before_release() {
        let (t, w1, rel, _acq, w4) = fig1();
        let sched = PersistSchedule::from_order(t.events.len(), &[w1, w4, rel]);
        let v = check_rp(&t, &sched).unwrap_err();
        assert!(v
            .iter()
            .any(|v| v.rule == RpRule::AcquireBarrier && v.second == w4));
    }

    #[test]
    fn arp_rejects_w1_after_w4() {
        let (t, w1, rel, _acq, w4) = fig1();
        let sched = PersistSchedule::from_order(t.events.len(), &[rel, w4, w1]);
        assert!(check_arp(&t, &sched).is_err());
        assert!(check_rp(&t, &sched).is_err());
    }

    #[test]
    fn unpersisted_release_blocks_acquirer_writes() {
        let (t, w1, _rel, _acq, w4) = fig1();
        // Release never persisted, but acquirer's write did.
        let sched = PersistSchedule::from_order(t.events.len(), &[w1, w4]);
        let v = check_rp(&t, &sched).unwrap_err();
        assert!(v.iter().any(|v| v.rule == RpRule::AcquireBarrier));
    }

    #[test]
    fn unpersisted_write_blocks_release() {
        let (t, _w1, rel, _acq, _w4) = fig1();
        let sched = PersistSchedule::from_order(t.events.len(), &[rel]);
        let v = check_rp(&t, &sched).unwrap_err();
        assert!(v.iter().any(|v| v.rule == RpRule::ReleaseBarrier));
    }

    #[test]
    fn nothing_persisted_is_always_fine() {
        let (t, ..) = fig1();
        let sched = PersistSchedule::new(t.events.len());
        check_rp(&t, &sched).unwrap();
        check_arp(&t, &sched).unwrap();
    }

    #[test]
    fn same_addr_order_enforced() {
        let mut b = LitmusBuilder::new(1);
        let a = b.write(0, 0x10, 1);
        let c = b.write(0, 0x10, 2);
        let t = b.build();
        let bad = PersistSchedule::from_order(t.events.len(), &[c, a]);
        let v = check_rp(&t, &bad).unwrap_err();
        assert_eq!(v[0].rule, RpRule::SameAddr);
        let good = PersistSchedule::from_order(t.events.len(), &[a, c]);
        check_rp(&t, &good).unwrap();
    }

    #[test]
    fn coalesced_equal_stamps_allowed() {
        let mut b = LitmusBuilder::new(1);
        let w = b.write(0, 0x10, 1);
        let rel = b.write_rel(0, 0x18, 2); // same 64B line as 0x10
        let t = b.build();
        let mut sched = PersistSchedule::new(t.events.len());
        sched.set(w, 3);
        sched.set(rel, 3); // atomic line flush
        check_rp(&t, &sched).unwrap();
    }

    #[test]
    fn plain_writes_may_persist_out_of_order() {
        // RP's one-sided barrier (Figure 2b): WB may persist before WA.
        let mut b = LitmusBuilder::new(1);
        let wa = b.write(0, 0x10, 1);
        let rel = b.write_rel(0, 0x20, 2);
        let wb = b.write(0, 0x30, 3);
        let t = b.build();
        let sched = PersistSchedule::from_order(t.events.len(), &[wb, wa, rel]);
        check_rp(&t, &sched).unwrap();
    }

    #[test]
    fn cut_closure_matches_pairwise_checks() {
        let (t, w1, rel, _acq, w4) = fig1();
        let hb = HbClosure::compute(&t).unwrap();
        let good = PersistSchedule::from_order(t.events.len(), &[w1, rel, _acq, w4]);
        check_cut_closure(&t, &hb, &good).unwrap();
        let bad = PersistSchedule::from_order(t.events.len(), &[rel, w1, _acq, w4]);
        let v = check_cut_closure(&t, &hb, &bad).unwrap_err();
        assert_eq!(v.missing, w1);
        assert_eq!(v.present, rel);
    }

    #[test]
    fn explicit_cut_checking() {
        let (t, w1, rel, _acq, w4) = fig1();
        let hb = HbClosure::compute(&t).unwrap();
        let ok: HashSet<EventId> = [w1, rel].into_iter().collect();
        check_consistent_cut(&t, &hb, &ok).unwrap();
        let bad: HashSet<EventId> = [rel].into_iter().collect();
        assert!(check_consistent_cut(&t, &hb, &bad).is_err());
        let bad2: HashSet<EventId> = [w4].into_iter().collect();
        assert!(check_consistent_cut(&t, &hb, &bad2).is_err());
    }

    #[test]
    fn cut_at_selects_by_stamp() {
        let (t, w1, rel, _acq, w4) = fig1();
        let sched = PersistSchedule::from_order(t.events.len(), &[w1, rel, w4]);
        assert_eq!(sched.cut_at(&t, 0), [w1].into_iter().collect());
        assert_eq!(sched.cut_at(&t, 1), [w1, rel].into_iter().collect());
        assert_eq!(sched.cut_at(&t, 2), [w1, rel, w4].into_iter().collect());
        assert_eq!(sched.distinct_stamps(), vec![0, 1, 2]);
    }

    #[test]
    fn full_barrier_is_stricter_than_rp() {
        // Figure 2b: WA; Rel; WB — RP lets WB persist before WA, the
        // full barrier does not.
        let mut b = LitmusBuilder::new(1);
        let wa = b.write(0, 0x10, 1);
        let rel = b.write_rel(0, 0x80, 2);
        let wb = b.write(0, 0x100, 3);
        let t = b.build();
        let reordered = PersistSchedule::from_order(t.events.len(), &[wb, wa, rel]);
        check_rp(&t, &reordered).unwrap();
        let v = check_epoch_full_barrier(&t, &reordered).unwrap_err();
        assert_eq!(v[0].second, wb);
        let strict = PersistSchedule::from_order(t.events.len(), &[wa, rel, wb]);
        check_epoch_full_barrier(&t, &strict).unwrap();
    }

    #[test]
    fn full_barrier_requires_release_before_later_writes() {
        let mut b = LitmusBuilder::new(1);
        let wa = b.write(0, 0x10, 1);
        let rel = b.write_rel(0, 0x80, 2);
        let wb = b.write(0, 0x100, 3);
        let t = b.build();
        // Release never persisted but a later write did.
        let sched = PersistSchedule::from_order(t.events.len(), &[wa, wb]);
        assert!(check_epoch_full_barrier(&t, &sched).is_err());
        let _ = rel;
    }

    #[test]
    fn rp_implies_every_prefix_is_consistent() {
        // Property glue: a schedule passing check_rp has only consistent
        // stamp-prefixes (checked exhaustively on this small trace).
        let (t, w1, rel, _acq, w4) = fig1();
        let hb = HbClosure::compute(&t).unwrap();
        let sched = PersistSchedule::from_order(t.events.len(), &[w1, rel, _acq, w4]);
        check_rp(&t, &sched).unwrap();
        for s in sched.distinct_stamps() {
            let cut = sched.cut_at(&t, s);
            check_consistent_cut(&t, &hb, &cut).unwrap();
        }
    }
}
