//! Formal memory-consistency and persistency model substrate for the
//! *Lazy Release Persistency* (ASPLOS 2020) reproduction.
//!
//! The paper (§2.1) assumes a simple variant of Release Consistency (RC)
//! with a total order on memory events; persistency models are specified
//! as constraints on the order in which writes may persist relative to
//! that happens-before order. This crate provides:
//!
//! * the shared event vocabulary ([`Event`], [`Annot`], [`Trace`]) used by
//!   every other crate in the workspace,
//! * an **exact** happens-before closure ([`hb::HbClosure`]) implementing
//!   the RC axioms of §2.1 (one-sided release/acquire barriers,
//!   same-address program order, synchronizes-with, RMW atomicity),
//! * streaming **persist-order checkers** ([`spec`]) for Release
//!   Persistency (§4.1) and the weaker ARP rule (§3.1), plus the
//!   consistent-cut criterion used for null recovery,
//! * a [`litmus`] builder for hand-written litmus executions.
//!
//! # Example
//!
//! ```
//! use lrp_model::litmus::LitmusBuilder;
//! use lrp_model::spec::{check_rp, PersistSchedule};
//!
//! // Thread 0 publishes a node (Figure 1 of the paper).
//! let mut b = LitmusBuilder::new(2);
//! let node = 0x100;
//! let link = 0x200;
//! let w1 = b.write(0, node, 42); // node field
//! let rel = b.write_rel(0, link, node); // link CAS (modelled as release write)
//! let _ = b.read_acq(1, link);
//! let trace = b.build();
//!
//! // A schedule that persists the link before the node violates RP.
//! let mut sched = PersistSchedule::new(trace.events.len());
//! sched.set(rel, 0);
//! sched.set(w1, 1);
//! assert!(check_rp(&trace, &sched).is_err());
//! ```

pub mod arena;
pub mod census;
pub mod codec;
pub mod event;
pub mod fxmap;
pub mod hb;
pub mod litmus;
pub mod spec;
pub mod types;

pub use arena::Arena;
pub use census::Census;
pub use event::{Event, EventKind, OpKind, OpMarker, Trace};
pub use fxmap::{FxHashMap, FxHashSet, FxHasher};
pub use types::{line_of, Addr, Annot, EventId, LineAddr, ThreadId, LINE_BYTES, WORD_BYTES};
