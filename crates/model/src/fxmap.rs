//! A zero-dependency FxHash-style hasher for hot-path hash tables.
//!
//! The workspace builds fully offline, so the simulator cannot pull in
//! `rustc-hash`; this is the same multiply-and-rotate construction
//! (Firefox's FxHasher), which is 5-10x cheaper than the standard
//! library's SipHash for the small integer keys the hot paths use
//! (line addresses, page indices, event ids). It is **not** DoS
//! resistant — only use it for tables keyed by simulator-internal
//! values, never by untrusted network input.
//!
//! Determinism note: the hash function is fixed (no per-process random
//! seed), so iteration order of an [`FxHashMap`] is stable across runs
//! of the same binary — but it is still *arbitrary*, so ordered output
//! must sort, exactly as with the standard hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash word-at-a-time hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert!(!m.contains_key(&7));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(0x40), h(0x40), "no per-process seed");
        // Consecutive line addresses must not collide in the low bits
        // (HashMap uses the top bits too, but a constant hash would
        // degrade every table to a list).
        let lows: FxHashSet<u64> = (0..64u64).map(|i| h(i * 64) & 0xffff).collect();
        assert!(
            lows.len() > 48,
            "low 16 bits nearly distinct: {}",
            lows.len()
        );
    }

    #[test]
    fn byte_writes_match_padding_semantics() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths may or may not collide; just exercise the
        // tail path and check both produce a stable value.
        assert_eq!(a.finish(), {
            let mut c = FxHasher::default();
            c.write(&[1, 2, 3]);
            c.finish()
        });
        let _ = b.finish();
    }
}
