//! Shared scalar types: addresses, thread/event identifiers, and memory
//! ordering annotations.

/// Byte address of a memory word. All accesses in the model are
/// word-granular (8 bytes) and word-aligned, mirroring the paper's
/// "ordering between individual word-granular writes".
pub type Addr = u64;

/// Identifier of a (hardware) thread. The simulated machine has one
/// thread per core (Table 1 of the paper).
pub type ThreadId = u16;

/// Index of an event in the global interleaving of a [`crate::Trace`].
pub type EventId = u32;

/// Address of a 64-byte cache line (i.e. `addr >> 6`).
pub type LineAddr = u64;

/// Size of a memory word in bytes.
pub const WORD_BYTES: u64 = 8;

/// Size of a cache line in bytes (Table 1: 64 B line width).
pub const LINE_BYTES: u64 = 64;

/// Returns the cache line containing `addr`.
#[inline]
pub fn line_of(addr: Addr) -> LineAddr {
    addr / LINE_BYTES
}

/// Returns the base byte address of line `line`.
#[inline]
pub fn line_base(line: LineAddr) -> Addr {
    line * LINE_BYTES
}

/// Memory-ordering annotation attached to an access (§2.1).
///
/// Releases and acquires carry the one-sided barrier semantics of RC; under
/// Release Persistency they additionally act as one-sided *persist*
/// barriers (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Annot {
    /// Ordinary access with no ordering semantics of its own.
    Plain,
    /// Acquire read (or acquire-RMW read half).
    Acquire,
    /// Release write (or release-RMW write half).
    Release,
    /// Both acquire and release (e.g. a CAS used for synchronization in
    /// both directions, as in the linked-list insert of Figure 1).
    AcqRel,
}

impl Annot {
    /// True if the annotation has acquire semantics.
    #[inline]
    pub fn is_acquire(self) -> bool {
        matches!(self, Annot::Acquire | Annot::AcqRel)
    }

    /// True if the annotation has release semantics.
    #[inline]
    pub fn is_release(self) -> bool {
        matches!(self, Annot::Release | Annot::AcqRel)
    }
}

impl std::fmt::Display for Annot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Annot::Plain => "plain",
            Annot::Acquire => "acq",
            Annot::Release => "rel",
            Annot::AcqRel => "acq_rel",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_round_trips() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_base(line_of(1000)), 960);
    }

    #[test]
    fn annot_classification() {
        assert!(Annot::Acquire.is_acquire());
        assert!(!Annot::Acquire.is_release());
        assert!(Annot::Release.is_release());
        assert!(!Annot::Release.is_acquire());
        assert!(Annot::AcqRel.is_acquire() && Annot::AcqRel.is_release());
        assert!(!Annot::Plain.is_acquire() && !Annot::Plain.is_release());
    }

    #[test]
    fn annot_display() {
        assert_eq!(Annot::Plain.to_string(), "plain");
        assert_eq!(Annot::AcqRel.to_string(), "acq_rel");
    }
}
