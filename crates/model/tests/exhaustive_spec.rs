//! Exhaustive specification cross-checks on tiny executions: for every
//! permutation of the writes of a small trace, the streaming RP checker,
//! the closure-based consistent-cut criterion, and the ARP rule must
//! relate exactly as the theory says:
//!
//! * `check_rp` ⟺ `check_cut_closure` (total orders),
//! * `check_rp` ⟹ `check_arp` (RP is strictly stronger),
//! * `check_epoch_full_barrier` ⟹ `check_rp` restricted to
//!   intra-thread rules... (verified as: full-barrier-valid orders are
//!   never rejected by RP's intra-thread rules on single-thread traces).

use lrp_model::hb::HbClosure;
use lrp_model::litmus::LitmusBuilder;
use lrp_model::spec::{
    check_arp, check_cut_closure, check_epoch_full_barrier, check_rp, PersistSchedule,
};
use lrp_model::{Annot, EventId, Trace};

fn permutations(items: &[EventId]) -> Vec<Vec<EventId>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

fn writes_of(t: &Trace) -> Vec<EventId> {
    t.events
        .iter()
        .filter(|e| e.is_write_effect())
        .map(|e| e.id)
        .collect()
}

/// Checks all three relationships over every write permutation of `t`.
fn exhaust(name: &str, t: &Trace) {
    let hb = HbClosure::compute_persist(t).unwrap();
    let writes = writes_of(t);
    assert!(writes.len() <= 6, "{name}: too many writes to enumerate");
    let mut rp_ok_count = 0;
    for perm in permutations(&writes) {
        let sched = PersistSchedule::from_order(t.events.len(), &perm);
        let rp = check_rp(t, &sched).is_ok();
        let cut = check_cut_closure(t, &hb, &sched).is_ok();
        assert_eq!(rp, cut, "{name}: rp/cut disagree on {perm:?}");
        if rp {
            rp_ok_count += 1;
            assert!(
                check_arp(t, &sched).is_ok(),
                "{name}: RP-valid order rejected by the weaker ARP rule: {perm:?}"
            );
        }
        if check_epoch_full_barrier(t, &sched).is_ok() && t.nthreads == 1 {
            assert!(
                rp,
                "{name}: full-barrier-valid order rejected by RP: {perm:?}"
            );
        }
    }
    assert!(rp_ok_count > 0, "{name}: no valid persist order at all?");
}

#[test]
fn exhaustive_message_passing() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x200, 0);
    b.write(0, 0x100, 1);
    b.write_rel(0, 0x200, 1);
    b.read_acq(1, 0x200);
    b.write(1, 0x300, 1);
    exhaust("MP", &b.build());
}

#[test]
fn exhaustive_single_thread_release_chain() {
    let mut b = LitmusBuilder::new(1);
    b.write(0, 0x10, 1);
    b.write_rel(0, 0x20, 2);
    b.write(0, 0x30, 3);
    b.write_rel(0, 0x40, 4);
    exhaust("chain-1t", &b.build());
}

#[test]
fn exhaustive_rmw_relay() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x100, 0);
    b.write(0, 0x180, 1);
    b.cas(0, 0x100, 0, 1, Annot::Release);
    b.cas(1, 0x100, 1, 2, Annot::AcqRel);
    b.write(1, 0x280, 2);
    exhaust("rmw-relay", &b.build());
}

#[test]
fn exhaustive_same_address_chain() {
    let mut b = LitmusBuilder::new(1);
    b.write(0, 0x10, 1);
    b.write(0, 0x10, 2);
    b.write(0, 0x18, 3);
    b.write(0, 0x10, 4);
    exhaust("same-addr", &b.build());
}

#[test]
fn exhaustive_two_thread_independent() {
    // No synchronization at all: every order should be RP-valid except
    // same-address inversions.
    let mut b = LitmusBuilder::new(2);
    b.write(0, 0x10, 1);
    b.write(0, 0x18, 2);
    b.write(1, 0x20, 3);
    b.write(1, 0x28, 4);
    let t = b.build();
    let hb = HbClosure::compute_persist(&t).unwrap();
    for perm in permutations(&writes_of(&t)) {
        let sched = PersistSchedule::from_order(t.events.len(), &perm);
        assert!(check_rp(&t, &sched).is_ok(), "unconstrained order rejected");
        assert!(check_cut_closure(&t, &hb, &sched).is_ok());
    }
}

#[test]
fn exhaustive_failed_cas_sync() {
    // A failed acquire-CAS still synchronizes; the release it read must
    // persist before the failer's later writes.
    let mut b = LitmusBuilder::new(2);
    b.init(0x100, 7);
    b.write(0, 0x180, 1);
    b.write_rel(0, 0x100, 8);
    b.cas(1, 0x100, 99, 0, Annot::AcqRel); // fails, reads 8
    b.write(1, 0x280, 2);
    exhaust("failed-cas", &b.build());
}

/// Partial persistence: every *prefix* of a valid total order is a valid
/// partial schedule under both checkers.
#[test]
fn prefixes_of_valid_orders_stay_valid() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x200, 0);
    b.write(0, 0x100, 1);
    b.write_rel(0, 0x200, 1);
    b.read_acq(1, 0x200);
    b.write(1, 0x300, 1);
    let t = b.build();
    let hb = HbClosure::compute_persist(&t).unwrap();
    let order = writes_of(&t); // program order happens to be RP-valid here
    for cut in 0..=order.len() {
        let sched = PersistSchedule::from_order(t.events.len(), &order[..cut]);
        assert!(check_rp(&t, &sched).is_ok(), "prefix {cut} rejected");
        assert!(check_cut_closure(&t, &hb, &sched).is_ok());
    }
}
