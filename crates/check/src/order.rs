//! Persist-order generator edges per discipline.
//!
//! Every discipline is represented by a set of generator edges
//! `(p, w)`: write `p` must persist no later than write `w`. Two facts
//! make generators sufficient everywhere downstream:
//!
//! * a persist *schedule* respects the discipline iff it respects every
//!   generator edge (stamp comparison composes transitively),
//! * a *cut* is admissible iff it is downward closed under the
//!   generator edges (closure under generators implies closure under
//!   their transitive closure).

use lrp_core::PersistDiscipline;
use lrp_model::hb::{HbClosure, TooLarge};
use lrp_model::{Addr, EventId, Trace};
use std::collections::HashMap;

/// Per-event persist-order predecessors of `trace` under discipline
/// `d`: `preds[w]` lists the writes that must persist no later than
/// write `w`. Indexed by event id; empty for non-writes. Rows are
/// sorted and deduplicated, so iteration order is deterministic.
pub fn persist_preds(trace: &Trace, d: PersistDiscipline) -> Result<Vec<Vec<EventId>>, TooLarge> {
    let n = trace.events.len();
    let mut preds: Vec<Vec<EventId>> = vec![Vec::new(); n];

    // Every discipline — even NOP — persists same-address writes in
    // coherence order: a cache line holds one value, so the durable
    // value of a location is always some prefix of its write sequence.
    let mut last: HashMap<Addr, EventId> = HashMap::new();
    for e in trace.events.iter().filter(|e| e.is_write_effect()) {
        if let Some(&p) = last.get(&e.addr) {
            preds[e.id as usize].push(p);
        }
        last.insert(e.addr, e.id);
    }
    if d == PersistDiscipline::Unconstrained {
        return Ok(preds);
    }

    // Release order is the base of every constrained discipline: the
    // persist-hb closure (§4.1's expanded RP rules), restricted to
    // write effects.
    let hb = HbClosure::compute_persist(trace)?;
    for e in trace.events.iter().filter(|e| e.is_write_effect()) {
        let row: Vec<EventId> = hb
            .preds_of(e.id)
            .filter(|&p| trace.events[p as usize].is_write_effect())
            .collect();
        preds[e.id as usize].extend(row);
    }

    match d {
        PersistDiscipline::ReleaseOrder | PersistDiscipline::Unconstrained => {}
        PersistDiscipline::EpochOrder => {
            // BB's full barriers around each release split every thread
            // into release-delimited segments: all writes of earlier
            // segments persist no later than any later write, and
            // within a segment earlier writes persist no later than the
            // closing release. Generators: edges from every write of
            // the immediately previous segment (transitivity covers
            // older segments), plus the intra-segment edges at the
            // release.
            let nt = trace.nthreads as usize;
            let mut prev_seg: Vec<Vec<EventId>> = vec![Vec::new(); nt];
            let mut cur_seg: Vec<Vec<EventId>> = vec![Vec::new(); nt];
            for e in trace.events.iter().filter(|e| e.is_write_effect()) {
                let t = e.tid as usize;
                preds[e.id as usize].extend(prev_seg[t].iter().copied());
                if e.is_release() {
                    preds[e.id as usize].extend(cur_seg[t].iter().copied());
                    cur_seg[t].push(e.id);
                    prev_seg[t] = std::mem::take(&mut cur_seg[t]);
                } else {
                    cur_seg[t].push(e.id);
                }
            }
        }
        PersistDiscipline::StoreOrder => {
            // SB/DPO persist each thread's stores in full program
            // order: chain each write to its immediate same-thread
            // predecessor (plus the release-order base for the
            // cross-thread sw edges).
            let nt = trace.nthreads as usize;
            let mut last_w: Vec<Option<EventId>> = vec![None; nt];
            for e in trace.events.iter().filter(|e| e.is_write_effect()) {
                let t = e.tid as usize;
                if let Some(p) = last_w[t] {
                    preds[e.id as usize].push(p);
                }
                last_w[t] = Some(e.id);
            }
        }
    }

    for row in &mut preds {
        row.sort_unstable();
        row.dedup();
    }
    Ok(preds)
}

/// Flattens a predecessor table into `(pred, write)` edges, ordered by
/// write id then predecessor id (deterministic first-violation reports).
pub fn edge_list(preds: &[Vec<EventId>]) -> Vec<(EventId, EventId)> {
    preds
        .iter()
        .enumerate()
        .flat_map(|(w, ps)| ps.iter().map(move |&p| (p, w as EventId)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_model::litmus::LitmusBuilder;

    /// T0: Wa; Rel; Wb  — three writes, the middle one a release.
    fn rel_trace() -> (Trace, EventId, EventId, EventId) {
        let mut b = LitmusBuilder::new(1);
        let wa = b.write(0, 0x10, 1);
        let rel = b.write_rel(0, 0x80, 2);
        let wb = b.write(0, 0x100, 3);
        (b.build(), wa, rel, wb)
    }

    #[test]
    fn unconstrained_keeps_only_same_addr_chains() {
        let mut b = LitmusBuilder::new(1);
        let w1 = b.write(0, 0x10, 1);
        let w2 = b.write(0, 0x10, 2);
        let w3 = b.write(0, 0x18, 3);
        let t = b.build();
        let p = persist_preds(&t, PersistDiscipline::Unconstrained).unwrap();
        assert_eq!(p[w2 as usize], vec![w1]);
        assert!(p[w1 as usize].is_empty());
        assert!(p[w3 as usize].is_empty());
    }

    #[test]
    fn release_order_is_one_sided() {
        let (t, wa, rel, wb) = rel_trace();
        let p = persist_preds(&t, PersistDiscipline::ReleaseOrder).unwrap();
        assert_eq!(p[rel as usize], vec![wa], "release waits for prior writes");
        assert!(p[wb as usize].is_empty(), "RP lets Wb persist before Wa");
    }

    #[test]
    fn epoch_order_adds_segment_barriers() {
        let (t, wa, rel, wb) = rel_trace();
        let p = persist_preds(&t, PersistDiscipline::EpochOrder).unwrap();
        assert_eq!(p[rel as usize], vec![wa]);
        // Wb is in the next epoch: both Wa and the release precede it.
        assert_eq!(p[wb as usize], vec![wa, rel]);
    }

    #[test]
    fn store_order_chains_each_thread() {
        let (t, wa, rel, wb) = rel_trace();
        let p = persist_preds(&t, PersistDiscipline::StoreOrder).unwrap();
        assert_eq!(p[rel as usize], vec![wa]);
        assert_eq!(p[wb as usize], vec![rel], "immediate po predecessor");
    }

    #[test]
    fn constrained_disciplines_keep_cross_thread_sw_edges() {
        // W1; Rel || Acq; W4 — every constrained discipline orders the
        // release before the acquirer's write.
        let mut b = LitmusBuilder::new(2);
        let w1 = b.write(0, 0x100, 42);
        let rel = b.write_rel(0, 0x200, 1);
        let _acq = b.read_acq(1, 0x200);
        let w4 = b.write(1, 0x300, 7);
        let t = b.build();
        for d in [
            PersistDiscipline::ReleaseOrder,
            PersistDiscipline::EpochOrder,
            PersistDiscipline::StoreOrder,
        ] {
            let p = persist_preds(&t, d).unwrap();
            assert!(p[w4 as usize].contains(&rel), "{d}: sw edge");
            assert!(p[w4 as usize].contains(&w1), "{d}: transitive base");
        }
        let p = persist_preds(&t, PersistDiscipline::Unconstrained).unwrap();
        assert!(p[w4 as usize].is_empty());
    }

    #[test]
    fn edge_list_is_deterministic_and_complete() {
        let (t, wa, rel, wb) = rel_trace();
        let p = persist_preds(&t, PersistDiscipline::EpochOrder).unwrap();
        let e = edge_list(&p);
        assert_eq!(e, vec![(wa, rel), (wa, wb), (rel, wb)]);
    }
}
