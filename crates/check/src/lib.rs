//! `lrp-check` — a crash-cut model checker with durable linearizability
//! as the oracle, cross-validating the `lrp-sim` timing simulator.
//!
//! The question every persistency mechanism must answer is: *for every
//! point the machine may crash, does the durable state make sense?* This
//! crate answers it in two bounded, exhaustive modes:
//!
//! 1. **Enumerate** ([`enumerate_check`]). A persistency discipline
//!    ([`lrp_core::PersistDiscipline`]) induces a partial persist order
//!    over the writes of an execution; a crash may durably retain any
//!    *admissible cut* — a set of writes that is per-location
//!    prefix-shaped (a cache line holds one value) and downward closed
//!    under the order ([`order`]). The checker walks the whole lattice
//!    of admissible cuts with memoized state hashing and a state budget
//!    ([`cuts`]), applies null recovery (§2.3 of the paper) to each
//!    durable image, and checks **durable linearizability**: the
//!    recovered abstract state must be explained by a linearization of
//!    the operations whose decisive write is durable ([`dl`]).
//!
//! 2. **Cross-validate** ([`cross_validate`]). The simulator records a
//!    [`lrp_model::spec::PersistSchedule`] — actual flush stamps — for
//!    every run. The checker replays those stamps: the schedule must
//!    respect every generator edge of the mechanism's promised
//!    discipline (so each crash point realizes an admissible cut), and
//!    every realized cut must recover and linearize. This closes the
//!    loop between the paper's hardware model (`lrp-core`,
//!    `lrp-baselines`), its formal persist-order spec (`lrp-model`),
//!    and its recovery claim (`lrp-recovery`).
//!
//! NOP (no enforcement) promises nothing: its violations are counted
//! and reported rather than failed — their existence is the paper's
//! motivation, and their disappearance under SB/BB/LRP/DPO is the
//! correctness result. Failures are minimized to a small cut and
//! rendered through the shared [`lrp_recovery::Counterexample`]
//! formatter.

pub mod cuts;
pub mod dl;
pub mod order;
pub mod verify;

pub use cuts::{enumerate_cuts, EnumStats, WriteChains};
pub use dl::{check_dl, decisive_events, DecisiveEvent, DlViolation};
pub use order::{edge_list, persist_preds};
pub use verify::{
    cross_validate, cross_validate_schedule, enumerate_check, generator_preds, mutate_reorder,
    CheckBound, CrossReport, EnumReport,
};
