//! Durable linearizability against sequential specifications.
//!
//! The recovered abstract state of a crash cut must be explainable by a
//! *linearization* of the operations whose effects are durable. The key
//! construction is the **decisive event** of each effectful operation:
//! the write at which the structure's abstract state changes. It is
//! found by replaying the volatile memory image event by event and
//! running the structural validator after every write effect — the
//! event where the abstract state moves is the decisive one, and it is
//! attributed to the operation span (thread + event range) containing
//! it. This is robust against helping (a helper's cleanup CAS changes
//! no abstract state) and multi-CAS operations (only one CAS moves the
//! abstract state).
//!
//! [`check_dl`] then takes a cut and asks for a linearization that
//! explains the recovered state. An operation whose decisive write is
//! *not* durable cannot be visible — that direction is exact. The
//! converse is not: a durable decisive write can still be invisible
//! when recovery cannot *reach* it (an enqueue's link CAS persists but
//! the chain of links leading to that node does not — the node is
//! durably written yet unreachable, which is a legal consistent cut
//! where both operations are dropped). So the witness is found by
//! search: a subsequence of the durable-decisive operations, replayed
//! in decisive order through the structure's sequential specification,
//! whose final state equals the recovered one. The search prefers
//! inclusion, so the reported witness is maximal and deterministic.
//!
//! Scope: effect-free operations (reads, failed updates, empty
//! dequeues) have no decisive event and impose no constraint here —
//! the oracle targets lost/reordered *effects*, which is exactly what a
//! persist-order bug produces.

use lrp_lfds::{validate_image, MemImage, Recovered, Structure};
use lrp_model::{EventId, OpKind, Trace};
use std::collections::HashSet;

/// The decisive event of one effectful operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisiveEvent {
    /// The write event at which the abstract state changed.
    pub event: EventId,
    /// Index into [`Trace::markers`] of the operation it belongs to.
    pub marker: usize,
}

/// Finds the decisive event of every effectful operation by abstract
/// replay. Attribution is delta-based, not performer-based: the change
/// is assigned to the unattributed operation whose span covers the
/// event and whose kind/result explain the delta — which handles
/// helping, where the write that makes an operation abstractly visible
/// is executed by another thread (e.g. the BST's splice CAS). Fails
/// (with a diagnostic) if a change cannot be attributed, which would
/// indicate the checker and the structures disagree about semantics.
pub fn decisive_events(structure: Structure, trace: &Trace) -> Result<Vec<DecisiveEvent>, String> {
    let mut img = MemImage::new(trace.initial_mem.iter().copied());
    let mut prev = validate_image(structure, &trace.roots, &img)
        .map_err(|e| format!("initial image invalid: {e}"))?;
    let mut out = Vec::new();
    let mut used = vec![false; trace.markers.len()];
    for e in &trace.events {
        if !e.is_write_effect() {
            continue;
        }
        img.write(e.addr, e.wval);
        // Transiently invalid mid-operation shapes cannot be compared;
        // the abstract state is re-sampled at the next valid write.
        let Ok(cur) = validate_image(structure, &trace.roots, &img) else {
            continue;
        };
        if cur == prev {
            continue;
        }
        let candidates: Vec<usize> = trace
            .markers
            .iter()
            .enumerate()
            .filter(|&(i, m)| {
                !used[i]
                    && m.first_event <= e.id
                    && e.id < m.end_event
                    && delta_matches(&prev, &cur, m.op, m.result)
            })
            .map(|(i, _)| i)
            .collect();
        let marker = match candidates.as_slice() {
            [] => {
                return Err(format!(
                    "abstract state changed at event {} but no operation explains it",
                    e.id
                ))
            }
            [one] => *one,
            many => {
                // Ambiguity: prefer the event's own thread (the common
                // un-helped case), else the earliest-started candidate.
                *many
                    .iter()
                    .find(|&&i| trace.markers[i].tid == e.tid)
                    .unwrap_or_else(|| {
                        many.iter()
                            .min_by_key(|&&i| (trace.markers[i].first_event, i))
                            .expect("non-empty")
                    })
            }
        };
        used[marker] = true;
        out.push(DecisiveEvent {
            event: e.id,
            marker,
        });
        prev = cur;
    }
    Ok(out)
}

/// Does the `prev -> cur` abstract step match operation `op`?
fn delta_matches(prev: &Recovered, cur: &Recovered, op: OpKind, result: u64) -> bool {
    match (prev, cur, op) {
        (Recovered::Set(a), Recovered::Set(b), OpKind::Insert(k, _)) => {
            !a.contains(&k) && b.contains(&k) && b.len() == a.len() + 1 && a.is_subset(b)
        }
        (Recovered::Set(a), Recovered::Set(b), OpKind::Delete(k)) => {
            a.contains(&k) && !b.contains(&k) && a.len() == b.len() + 1 && b.is_subset(a)
        }
        (Recovered::Queue(a), Recovered::Queue(b), OpKind::Enqueue(v)) => {
            b.len() == a.len() + 1 && b.last() == Some(&v) && b[..a.len()] == a[..]
        }
        (Recovered::Queue(a), Recovered::Queue(b), OpKind::Dequeue) => {
            a.len() == b.len() + 1
                && result > 0
                && a.first() == Some(&(result - 1))
                && a[1..] == b[..]
        }
        _ => false,
    }
}

/// Why a cut is not durably linearizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlViolation {
    /// The attempted linearization: marker indices in decisive order.
    pub witness: Vec<usize>,
    /// The replay step whose precondition failed, if any.
    pub at_op: Option<usize>,
    /// The state the linearization produces (up to the failing step).
    pub replayed: Recovered,
    /// The state recovery actually produced.
    pub recovered: Recovered,
    /// One-line description.
    pub detail: String,
}

/// Checks durable linearizability of one cut: some subsequence of the
/// operations whose decisive event satisfies `included` (the
/// durable-decisive candidates), replayed in decisive order through
/// the sequential spec from `initial`, must reproduce `recovered`.
/// Returns the witness (marker indices, maximal under include-first
/// search) on success; the violation reports the full candidate set.
pub fn check_dl(
    trace: &Trace,
    decisive: &[DecisiveEvent],
    included: &dyn Fn(EventId) -> bool,
    initial: &Recovered,
    recovered: &Recovered,
) -> Result<Vec<usize>, Box<DlViolation>> {
    let candidates: Vec<usize> = decisive
        .iter()
        .filter(|d| included(d.event))
        .map(|d| d.marker)
        .collect();
    let mut dead: HashSet<(usize, Recovered)> = HashSet::new();
    let mut witness = Vec::new();
    if search(
        trace,
        &candidates,
        0,
        initial.clone(),
        recovered,
        &mut dead,
        &mut witness,
    ) {
        return Ok(witness);
    }
    // No subsequence explains the recovered state. For the report,
    // replay the full candidate set — the natural (all-durable)
    // explanation — up to its first broken precondition.
    let mut state = initial.clone();
    let mut at_op = None;
    let mut detail = String::new();
    for &mi in &candidates {
        let m = &trace.markers[mi];
        if let Err(e) = apply(&mut state, m.op, m.result) {
            at_op = Some(mi);
            detail = e;
            break;
        }
    }
    if at_op.is_none() {
        detail = "recovered state differs from the linearization replay".to_string();
    }
    Err(Box::new(DlViolation {
        witness: candidates,
        at_op,
        replayed: state,
        recovered: recovered.clone(),
        detail,
    }))
}

/// Include-first DFS over subsequences of `candidates[i..]` from
/// `state`: returns true (filling `witness`) iff some subsequence
/// replays to `recovered`. `dead` memoizes (index, state) pairs that
/// cannot reach the goal, bounding the walk by the number of distinct
/// intermediate abstract states.
fn search(
    trace: &Trace,
    candidates: &[usize],
    i: usize,
    state: Recovered,
    recovered: &Recovered,
    dead: &mut HashSet<(usize, Recovered)>,
    witness: &mut Vec<usize>,
) -> bool {
    if i == candidates.len() {
        return state == *recovered;
    }
    if dead.contains(&(i, state.clone())) {
        return false;
    }
    let m = &trace.markers[candidates[i]];
    let mut with = state.clone();
    if apply(&mut with, m.op, m.result).is_ok() {
        witness.push(candidates[i]);
        if search(trace, candidates, i + 1, with, recovered, dead, witness) {
            return true;
        }
        witness.pop();
    }
    if search(
        trace,
        candidates,
        i + 1,
        state.clone(),
        recovered,
        dead,
        witness,
    ) {
        return true;
    }
    dead.insert((i, state));
    false
}

/// One sequential-spec step; `Err` describes the violated precondition.
fn apply(state: &mut Recovered, op: OpKind, result: u64) -> Result<(), String> {
    match (state, op) {
        (Recovered::Set(s), OpKind::Insert(k, _)) => {
            if !s.insert(k) {
                return Err(format!("insert({k}) linearized while {k} already present"));
            }
            Ok(())
        }
        (Recovered::Set(s), OpKind::Delete(k)) => {
            if !s.remove(&k) {
                return Err(format!("delete({k}) linearized while {k} absent"));
            }
            Ok(())
        }
        (Recovered::Queue(q), OpKind::Enqueue(v)) => {
            q.push(v);
            Ok(())
        }
        (Recovered::Queue(q), OpKind::Dequeue) => {
            if result == 0 {
                return Err("empty dequeue has no effect to linearize".to_string());
            }
            let v = result - 1;
            if q.first() != Some(&v) {
                return Err(format!(
                    "dequeue returned {v} but the linearized queue head is {:?}",
                    q.first()
                ));
            }
            q.remove(0);
            Ok(())
        }
        (_, op) => Err(format!("operation {op:?} does not fit the structure")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_lfds::WorkloadSpec;
    use std::collections::BTreeSet;

    fn initial_of(structure: Structure, trace: &Trace) -> Recovered {
        let img = MemImage::new(trace.initial_mem.iter().copied());
        validate_image(structure, &trace.roots, &img).unwrap()
    }

    #[test]
    fn every_successful_update_has_exactly_one_decisive_event() {
        for s in Structure::ALL {
            let t = WorkloadSpec::new(s)
                .initial_size(8)
                .threads(2)
                .ops_per_thread(4)
                .seed(3)
                .build_trace();
            let d = decisive_events(s, &t).unwrap_or_else(|e| panic!("{s}: {e}"));
            // Effectful ops: successful inserts/deletes/enqueues and
            // non-empty dequeues.
            let effectful: Vec<usize> = t
                .markers
                .iter()
                .enumerate()
                .filter(|(_, m)| match m.op {
                    OpKind::Insert(..) | OpKind::Delete(_) => m.result == 1,
                    OpKind::Enqueue(_) => true,
                    OpKind::Dequeue => m.result > 0,
                    _ => false,
                })
                .map(|(i, _)| i)
                .collect();
            let mut got: Vec<usize> = d.iter().map(|x| x.marker).collect();
            got.sort_unstable();
            let mut want = effectful;
            want.sort_unstable();
            assert_eq!(got, want, "{s}: decisive events must cover effectful ops");
            // Decisive events are in-span and strictly increasing.
            assert!(d.windows(2).all(|w| w[0].event < w[1].event));
        }
    }

    #[test]
    fn full_cut_replays_to_final_state() {
        for s in Structure::ALL {
            let t = WorkloadSpec::new(s)
                .initial_size(8)
                .threads(2)
                .ops_per_thread(4)
                .seed(7)
                .build_trace();
            let d = decisive_events(s, &t).unwrap();
            let initial = initial_of(s, &t);
            let final_img = MemImage::new(t.final_mem());
            let final_state = validate_image(s, &t.roots, &final_img).unwrap();
            let w = check_dl(&t, &d, &|_| true, &initial, &final_state)
                .unwrap_or_else(|v| panic!("{s}: {}", v.detail));
            assert_eq!(w.len(), d.len());
            // The empty cut replays to the initial state.
            check_dl(&t, &d, &|_| false, &initial, &initial).unwrap();
        }
    }

    #[test]
    fn wrong_recovered_state_is_rejected_with_witness() {
        let t = WorkloadSpec::new(Structure::LinkedList)
            .initial_size(8)
            .threads(1)
            .ops_per_thread(4)
            .seed(2)
            .build_trace();
        let d = decisive_events(Structure::LinkedList, &t).unwrap();
        let initial = initial_of(Structure::LinkedList, &t);
        let bogus = Recovered::Set(BTreeSet::from([999_999]));
        let v = check_dl(&t, &d, &|_| true, &initial, &bogus).unwrap_err();
        assert!(v.at_op.is_none());
        assert_eq!(v.recovered, bogus);
        assert!(v.detail.contains("differs"));
    }

    #[test]
    fn precondition_violations_are_detected() {
        let mut s = Recovered::Set(BTreeSet::from([5]));
        assert!(apply(&mut s, OpKind::Insert(5, 5), 1).is_err());
        assert!(apply(&mut s, OpKind::Delete(7), 1).is_err());
        assert!(apply(&mut s, OpKind::Delete(5), 1).is_ok());
        let mut q = Recovered::Queue(vec![3, 4]);
        assert!(
            apply(&mut q, OpKind::Dequeue, 5).is_err(),
            "head is 3 not 4"
        );
        assert!(apply(&mut q, OpKind::Dequeue, 4).is_ok());
        assert!(apply(&mut q, OpKind::Enqueue(9), 1).is_ok());
        assert_eq!(q, Recovered::Queue(vec![4, 9]));
    }
}
