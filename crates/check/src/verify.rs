//! The two checker entry points.
//!
//! * [`cross_validate`] — the simulator-as-subject mode: run a bounded
//!   harness workload through `lrp-sim` under one mechanism, then (a)
//!   assert the recorded persist stamps respect the mechanism's
//!   discipline (every generator edge, so every crash cut the stamps
//!   realize is admissible), and (b) assert every realized crash cut is
//!   durably linearizable after null recovery.
//! * [`enumerate_check`] — the discipline-as-subject mode: no simulator
//!   involved; walk *all* admissible cuts of the discipline's lattice
//!   (budgeted, memoized) and check each. For disciplines that guarantee
//!   durable linearizability a single bad cut is a failure; for the
//!   unconstrained (NOP) lattice violations are counted and reported —
//!   that count being positive is the paper's motivation, not a bug.
//!
//! Failures are minimized (greedily shrinking the cut while it still
//! fails) and rendered through the workspace's shared
//! [`lrp_recovery::Counterexample`] formatter.

use crate::cuts::{enumerate_cuts, EnumStats, WriteChains};
use crate::dl::{check_dl, decisive_events, DecisiveEvent, DlViolation};
use crate::order::{edge_list, persist_preds};
use lrp_core::PersistDiscipline;
use lrp_lfds::{validate_image, Recovered, Structure, ValidationError, WorkloadSpec};
use lrp_model::spec::{check_stamp_edges, PersistSchedule};
use lrp_model::{EventId, Trace};
use lrp_recovery::{Counterexample, CrashPlan};
use lrp_sim::{Mechanism, Sim, SimConfig};
use std::collections::HashSet;

/// Workload and search bounds for one checker run.
#[derive(Debug, Clone, Copy)]
pub struct CheckBound {
    /// Worker threads in the generated workload.
    pub threads: u16,
    /// Operations per worker thread.
    pub ops_per_thread: usize,
    /// Keys pre-inserted before recording starts.
    pub initial_size: usize,
    /// Workload seed.
    pub seed: u64,
    /// Budget for the cut-lattice walk (distinct memoized states).
    pub max_states: usize,
}

impl Default for CheckBound {
    fn default() -> Self {
        // Large enough that every mechanism (except NOP, which never
        // flushes) records several distinct persist stamps, small
        // enough that the full cut lattice fits the state budget.
        CheckBound {
            threads: 2,
            ops_per_thread: 4,
            initial_size: 8,
            seed: 3,
            max_states: 20_000,
        }
    }
}

impl CheckBound {
    /// Builds the bounded harness trace this bound describes.
    pub fn build_trace(&self, structure: Structure) -> Trace {
        WorkloadSpec::new(structure)
            .initial_size(self.initial_size)
            .threads(self.threads)
            .ops_per_thread(self.ops_per_thread)
            .seed(self.seed)
            .build_trace()
    }
}

/// Outcome of one successful [`cross_validate`] run.
#[derive(Debug, Clone, Copy)]
pub struct CrossReport {
    /// Crash points examined (every distinct flush stamp plus the
    /// pre-persist state).
    pub crash_points: usize,
    /// Generator edges the schedule was checked against.
    pub edges: usize,
    /// DL violations observed but waived because the discipline makes
    /// no guarantee (NOP). Always zero for guaranteed disciplines.
    pub waived: usize,
}

/// Outcome of one successful [`enumerate_check`] run.
#[derive(Debug, Clone, Copy)]
pub struct EnumReport {
    /// Lattice-walk statistics (admissible cuts visited, truncation).
    pub stats: EnumStats,
    /// Distinct durable states actually validated (cuts deduplicated by
    /// durable overlay + included decisive events).
    pub checked: usize,
    /// DL violations waived because the discipline guarantees nothing.
    pub waived: usize,
}

/// Why one crash cut failed.
enum CutFailure {
    /// Null recovery rejected the durable image.
    Recovery(ValidationError),
    /// The recovered state has no explaining linearization.
    Dl(Box<DlViolation>),
}

/// Everything needed to judge a single cut, bundled so the minimizer
/// and both entry points share one code path.
struct Checker<'a> {
    structure: Structure,
    discipline: PersistDiscipline,
    trace: &'a Trace,
    chains: WriteChains,
    preds: Vec<Vec<EventId>>,
    succs: Vec<Vec<EventId>>,
    decisive: Vec<DecisiveEvent>,
    initial: Recovered,
}

impl<'a> Checker<'a> {
    fn new(
        structure: Structure,
        discipline: PersistDiscipline,
        trace: &'a Trace,
        title: &str,
    ) -> Result<Self, Box<Counterexample>> {
        let internal = |what: String| {
            Box::new(
                Counterexample::new(title, what)
                    .context("structure", structure.name())
                    .context("discipline", discipline.name()),
            )
        };
        let preds = persist_preds(trace, discipline)
            .map_err(|e| internal(format!("trace exceeds the hb-closure budget: {e:?}")))?;
        let mut succs: Vec<Vec<EventId>> = vec![Vec::new(); trace.events.len()];
        for (w, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p as usize].push(w as EventId);
            }
        }
        let decisive = decisive_events(structure, trace)
            .map_err(|e| internal(format!("decisive-event attribution failed: {e}")))?;
        let initial = validate_image(
            structure,
            &trace.roots,
            &lrp_lfds::MemImage::new(trace.initial_mem.iter().copied()),
        )
        .map_err(|e| internal(format!("initial image invalid: {e}")))?;
        Ok(Checker {
            structure,
            discipline,
            trace,
            chains: WriteChains::new(trace),
            preds,
            succs,
            decisive,
            initial,
        })
    }

    /// Judges one cut: `None` = recovers and linearizes.
    fn cut_failure(&self, cut: &[usize]) -> Option<CutFailure> {
        let img = self.chains.image(self.trace, cut);
        let recovered = match validate_image(self.structure, &self.trace.roots, &img) {
            Ok(r) => r,
            Err(e) => return Some(CutFailure::Recovery(e)),
        };
        let included = |e: EventId| self.chains.includes(cut, e);
        match check_dl(
            self.trace,
            &self.decisive,
            &included,
            &self.initial,
            &recovered,
        ) {
            Ok(_) => None,
            Err(v) => Some(CutFailure::Dl(v)),
        }
    }

    /// Greedily shrinks a failing cut: repeatedly un-include a maximal
    /// durable write (one with no included persist-order successor, so
    /// the cut stays admissible) while the failure persists. Candidates
    /// are tried in descending event-id order, so the result is
    /// deterministic. Returns the minimized cut and its failure.
    fn minimize(&self, mut cut: Vec<usize>) -> (Vec<usize>, CutFailure) {
        loop {
            let mut shrunk = false;
            // Maximal included writes, newest first.
            let mut tops: Vec<(EventId, usize)> = (0..self.chains.nlocs())
                .filter(|&l| cut[l] > 0)
                .map(|l| (self.chains.chain(l)[cut[l] - 1], l))
                .filter(|&(w, _)| {
                    !self.succs[w as usize]
                        .iter()
                        .any(|&x| self.chains.includes(&cut, x))
                })
                .collect();
            tops.sort_unstable_by_key(|&(w, _)| std::cmp::Reverse(w));
            for (_, l) in tops {
                cut[l] -= 1;
                if self.cut_failure(&cut).is_some() {
                    shrunk = true;
                    break;
                }
                cut[l] += 1;
            }
            if !shrunk {
                break;
            }
        }
        let failure = self
            .cut_failure(&cut)
            .expect("minimized cut still fails by construction");
        (cut, failure)
    }

    /// Renders a minimized failing cut as a counterexample.
    fn render(
        &self,
        title: &str,
        crash: &str,
        sched: Option<&PersistSchedule>,
        cut: &[usize],
        failure: &CutFailure,
    ) -> Box<Counterexample> {
        let mut cx = Counterexample::new(
            title,
            match failure {
                CutFailure::Recovery(e) => format!("null recovery failed: {e}"),
                CutFailure::Dl(v) => match v.at_op {
                    Some(mi) => format!(
                        "no linearization: {} ({})",
                        v.detail,
                        Counterexample::render_op(&self.trace.markers[mi])
                    ),
                    None => format!("{} (replayed {})", v.detail, v.replayed.render()),
                },
            },
        )
        .context("structure", self.structure.name())
        .context("discipline", self.discipline.name())
        .context("crash", crash);
        // The ops whose decisive event is durable — the linearization
        // candidates — in decisive order.
        cx.ops = self
            .decisive
            .iter()
            .filter(|d| self.chains.includes(cut, d.event))
            .map(|d| Counterexample::render_op(&self.trace.markers[d.marker]))
            .collect();
        cx.cut = self
            .chains
            .included_writes(cut)
            .into_iter()
            .map(|w| {
                let line = Counterexample::render_event(&self.trace.events[w as usize]);
                match sched.and_then(|s| s.stamp(w)) {
                    Some(s) => format!("{line}  (stamp {s})"),
                    None => line,
                }
            })
            .collect();
        if let CutFailure::Dl(v) = failure {
            cx.recovered = Some(v.recovered.render());
        }
        Box::new(cx)
    }
}

/// Cross-validates a recorded persist schedule against `discipline`:
/// every generator edge must be stamp-respected, and every crash cut
/// the stamps realize must pass null recovery + durable linearizability.
/// Violations are waived (counted, not failed) when the discipline
/// guarantees nothing.
pub fn cross_validate_schedule(
    structure: Structure,
    discipline: PersistDiscipline,
    trace: &Trace,
    sched: &PersistSchedule,
    title: &str,
) -> Result<CrossReport, Box<Counterexample>> {
    let ck = Checker::new(structure, discipline, trace, title)?;

    // (a) Admissibility of the schedule itself. A single violated
    // generator edge is already a minimal counterexample.
    let edges = edge_list(&ck.preds);
    let nedges = edges.len();
    if discipline != PersistDiscipline::Unconstrained {
        if let Some((p, w)) = check_stamp_edges(sched, edges) {
            let stamp = |e: EventId| match sched.stamp(e) {
                Some(s) => format!("stamp {s}"),
                None => "never persisted".to_string(),
            };
            let mut cx = Counterexample::new(
                title,
                format!(
                    "inadmissible schedule: e{w} persisted ({}) before its \
                     required predecessor e{p} ({})",
                    stamp(w),
                    stamp(p)
                ),
            )
            .context("structure", structure.name())
            .context("discipline", discipline.name());
            cx.cut = [p, w]
                .iter()
                .map(|&e| {
                    format!(
                        "{}  ({})",
                        Counterexample::render_event(&trace.events[e as usize]),
                        stamp(e)
                    )
                })
                .collect();
            return Err(Box::new(cx));
        }
    }

    // (b) Every realized crash cut recovers and linearizes.
    let mut waived = 0;
    let stamps = CrashPlan::Exhaustive.stamps(sched);
    let crash_points = stamps.len();
    for stamp in stamps {
        let crash = match stamp {
            Some(s) => format!("after flush stamp {s}"),
            None => "before anything persisted".to_string(),
        };
        let cut = match ck.chains.realized(sched, stamp) {
            Ok(c) => c,
            Err(w) => {
                return Err(Box::new(
                    Counterexample::new(
                        title,
                        format!(
                            "durable set is not per-location prefix-shaped: e{w} is \
                             durable while an earlier same-line write is not"
                        ),
                    )
                    .context("structure", structure.name())
                    .context("discipline", discipline.name())
                    .context("crash", crash),
                ))
            }
        };
        if ck.cut_failure(&cut).is_some() {
            if !discipline.guarantees_dl() {
                waived += 1;
                continue;
            }
            let (cut, f) = ck.minimize(cut);
            return Err(ck.render(title, &crash, Some(sched), &cut, &f));
        }
    }
    Ok(CrossReport {
        crash_points,
        edges: nedges,
        waived,
    })
}

/// Runs the bounded workload for `structure` through the simulator
/// under `mechanism` and cross-validates the recorded schedule against
/// the mechanism's promised discipline.
pub fn cross_validate(
    structure: Structure,
    mechanism: Mechanism,
    bound: &CheckBound,
) -> Result<CrossReport, Box<Counterexample>> {
    let trace = bound.build_trace(structure);
    let run = Sim::new(SimConfig::new(mechanism), &trace).run();
    let title = format!(
        "{}/{} seed {}",
        mechanism.name(),
        structure.name(),
        bound.seed
    );
    cross_validate_schedule(
        structure,
        mechanism.discipline(),
        &trace,
        &run.schedule,
        &title,
    )
}

/// Reorders one persist pair across a generator edge: finds the first
/// edge `(p, w)` whose stamps are finite and distinct and swaps them,
/// producing a schedule the discipline must reject. Returns `None` if
/// no such edge exists (e.g. everything persisted in one flush).
pub fn mutate_reorder(
    sched: &PersistSchedule,
    preds: &[Vec<EventId>],
) -> Option<(PersistSchedule, (EventId, EventId))> {
    for (p, w) in edge_list(preds) {
        if let (Some(sp), Some(sw)) = (sched.stamp(p), sched.stamp(w)) {
            if sp < sw {
                let mut m = sched.clone();
                m.set(p, sw);
                m.set(w, sp);
                return Some((m, (p, w)));
            }
        }
    }
    None
}

/// Builds the generator-edge table for `trace` under `discipline` —
/// the companion to [`mutate_reorder`] for callers that do not hold a
/// [`Checker`].
pub fn generator_preds(
    trace: &Trace,
    discipline: PersistDiscipline,
) -> Result<Vec<Vec<EventId>>, Box<Counterexample>> {
    persist_preds(trace, discipline).map_err(|e| {
        Box::new(Counterexample::new(
            "generator-edge construction",
            format!("trace exceeds the hb-closure budget: {e:?}"),
        ))
    })
}

/// Walks every admissible cut of `discipline`'s lattice for the bounded
/// workload and checks null recovery + durable linearizability on each
/// distinct durable state. No simulator run is involved — this checks
/// the *discipline*, not a particular schedule.
pub fn enumerate_check(
    structure: Structure,
    discipline: PersistDiscipline,
    bound: &CheckBound,
) -> Result<EnumReport, Box<Counterexample>> {
    let trace = bound.build_trace(structure);
    let title = format!(
        "{}/{} seed {}",
        discipline.name(),
        structure.name(),
        bound.seed
    );
    let ck = Checker::new(structure, discipline, &trace, &title)?;

    // Cuts realizing the same durable overlay AND the same included
    // decisive events are equivalent for both checks; deduplicate.
    type CutKey = (Vec<(lrp_model::Addr, u64)>, Vec<EventId>);
    let mut seen: HashSet<CutKey> = HashSet::new();
    let mut waived = 0usize;
    let mut first_failure: Option<(Vec<usize>, CutFailure)> = None;
    let stats = enumerate_cuts(&ck.chains, &ck.preds, bound.max_states, &mut |cut| {
        let key = (
            ck.chains.overlay(&trace, cut),
            ck.decisive
                .iter()
                .map(|d| d.event)
                .filter(|&e| ck.chains.includes(cut, e))
                .collect(),
        );
        if !seen.insert(key) {
            return true;
        }
        if let Some(f) = ck.cut_failure(cut) {
            if !discipline.guarantees_dl() {
                waived += 1;
                return true;
            }
            first_failure = Some((cut.to_vec(), f));
            return false;
        }
        true
    });
    if let Some((cut, _)) = first_failure {
        let (cut, f) = ck.minimize(cut);
        return Err(ck.render(&title, "enumerated cut", None, &cut, &f));
    }
    Ok(EnumReport {
        stats,
        checked: seen.len(),
        waived,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CheckBound {
        CheckBound::default()
    }

    #[test]
    fn lrp_schedule_cross_validates_on_a_list() {
        let r = cross_validate(Structure::LinkedList, Mechanism::Lrp, &quick())
            .unwrap_or_else(|cx| panic!("{cx}"));
        assert!(r.crash_points > 1);
        assert_eq!(r.waived, 0);
    }

    #[test]
    fn mutated_schedule_is_rejected_with_a_counterexample() {
        // A longer run gives many distinct stamps, guaranteeing some
        // generator edge crosses two of them.
        let bound = CheckBound {
            ops_per_thread: 8,
            seed: 1,
            ..quick()
        };
        let trace = bound.build_trace(Structure::LinkedList);
        let run = Sim::new(SimConfig::new(Mechanism::Lrp), &trace).run();
        let preds = generator_preds(&trace, PersistDiscipline::ReleaseOrder).unwrap();
        let (mutated, (p, w)) =
            mutate_reorder(&run.schedule, &preds).expect("a reorderable edge exists");
        let cx = cross_validate_schedule(
            Structure::LinkedList,
            PersistDiscipline::ReleaseOrder,
            &trace,
            &mutated,
            "mutation",
        )
        .expect_err("the mutation must be caught");
        let s = cx.to_string();
        assert!(
            s.contains(&format!("e{w} persisted")) && s.contains(&format!("e{p}")),
            "counterexample names the violated edge: {s}"
        );
    }

    #[test]
    fn enumerate_finds_nop_violations_but_no_lrp_ones() {
        let bound = quick();
        let lrp = enumerate_check(
            Structure::LinkedList,
            PersistDiscipline::ReleaseOrder,
            &bound,
        )
        .unwrap_or_else(|cx| panic!("{cx}"));
        assert_eq!(lrp.waived, 0);
        assert!(!lrp.stats.truncated);
        let nop = enumerate_check(
            Structure::LinkedList,
            PersistDiscipline::Unconstrained,
            &bound,
        )
        .unwrap_or_else(|cx| panic!("{cx}"));
        assert!(
            nop.waived > 0,
            "the unconstrained lattice must contain unrecoverable cuts \
             ({} states checked)",
            nop.checked
        );
        assert!(nop.stats.states >= lrp.stats.states);
    }

    #[test]
    fn minimizer_produces_a_small_deterministic_counterexample() {
        let bound = quick();
        let trace = bound.build_trace(Structure::LinkedList);
        let ck = Checker::new(
            Structure::LinkedList,
            PersistDiscipline::Unconstrained,
            &trace,
            "min",
        )
        .unwrap();
        // Find any failing cut by walking the unconstrained lattice.
        let mut bad: Option<Vec<usize>> = None;
        enumerate_cuts(&ck.chains, &ck.preds, 50_000, &mut |cut| {
            if ck.cut_failure(cut).is_some() {
                bad = Some(cut.to_vec());
                return false;
            }
            true
        });
        let bad = bad.expect("the NOP lattice contains a failing cut");
        let (min1, f1) = ck.minimize(bad.clone());
        let (min2, _) = ck.minimize(bad.clone());
        assert_eq!(min1, min2, "minimization is deterministic");
        assert!(
            min1.iter().sum::<usize>() <= bad.iter().sum::<usize>(),
            "minimization never grows the cut"
        );
        let cx = ck.render("min", "enumerated cut", None, &min1, &f1);
        let s = cx.to_string();
        assert!(s.starts_with("counterexample: min\n"));
        assert!(s.contains("  failure: "));
    }
}
