//! The crash-cut lattice: per-location write prefixes.
//!
//! A crash leaves each memory location holding the value of some prefix
//! of its (coherence-ordered) write sequence — a cache line is one
//! atomic unit, so nothing finer is observable. A *cut* is therefore a
//! vector of per-location prefix lengths; the discipline's generator
//! edges ([`crate::order`]) carve out which cuts are admissible.
//!
//! [`enumerate_cuts`] walks the admissible sub-lattice by DFS with
//! memoized states (the ISSUE's "memoized state hashing"): each
//! reachable prefix vector is visited exactly once, and a `max_states`
//! budget bounds the walk for the unconstrained (NOP) lattice, whose
//! size is the product of the per-location chain lengths.

use lrp_lfds::MemImage;
use lrp_model::spec::PersistSchedule;
use lrp_model::{Addr, EventId, Trace};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Per-location write chains of a trace, in interleaving order.
#[derive(Debug, Clone)]
pub struct WriteChains {
    /// Locations in ascending address order (deterministic).
    addrs: Vec<Addr>,
    /// `chains[l]` = write event ids to `addrs[l]`, in id order.
    chains: Vec<Vec<EventId>>,
    /// Event id → (location index, position in chain).
    pos: HashMap<EventId, (usize, usize)>,
}

impl WriteChains {
    /// Builds the chains over every write effect of `trace`.
    pub fn new(trace: &Trace) -> Self {
        let mut by_addr: BTreeMap<Addr, Vec<EventId>> = BTreeMap::new();
        for e in trace.events.iter().filter(|e| e.is_write_effect()) {
            by_addr.entry(e.addr).or_default().push(e.id);
        }
        let mut addrs = Vec::with_capacity(by_addr.len());
        let mut chains = Vec::with_capacity(by_addr.len());
        let mut pos = HashMap::new();
        for (a, chain) in by_addr {
            for (i, &w) in chain.iter().enumerate() {
                pos.insert(w, (addrs.len(), i));
            }
            addrs.push(a);
            chains.push(chain);
        }
        WriteChains { addrs, chains, pos }
    }

    /// Number of written locations.
    pub fn nlocs(&self) -> usize {
        self.addrs.len()
    }

    /// Total number of writes across all chains.
    pub fn nwrites(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// The write chain of location index `l`, in coherence order.
    pub fn chain(&self, l: usize) -> &[EventId] {
        &self.chains[l]
    }

    /// Is write `e` included in `cut`?
    pub fn includes(&self, cut: &[usize], e: EventId) -> bool {
        self.pos.get(&e).is_some_and(|&(l, p)| cut[l] > p)
    }

    /// The included write ids of `cut`, ascending.
    pub fn included_writes(&self, cut: &[usize]) -> Vec<EventId> {
        let mut out: Vec<EventId> = cut
            .iter()
            .enumerate()
            .flat_map(|(l, &k)| self.chains[l][..k].iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// The durable memory image of `cut`: the initial image overwritten
    /// by each location's last included write.
    pub fn image(&self, trace: &Trace, cut: &[usize]) -> MemImage {
        let mut img = MemImage::new(trace.initial_mem.iter().copied());
        for (l, &k) in cut.iter().enumerate() {
            if k > 0 {
                let e = &trace.events[self.chains[l][k - 1] as usize];
                img.write(e.addr, e.wval);
            }
        }
        img
    }

    /// The per-location `(addr, value)` overlay of `cut` — the exact
    /// durable difference from the initial image. Used to deduplicate
    /// validation work across cuts producing identical durable states.
    pub fn overlay(&self, trace: &Trace, cut: &[usize]) -> Vec<(Addr, u64)> {
        cut.iter()
            .enumerate()
            .filter(|&(_, &k)| k > 0)
            .map(|(l, &k)| {
                let e = &trace.events[self.chains[l][k - 1] as usize];
                (e.addr, e.wval)
            })
            .collect()
    }

    /// The cut realized by `sched` at crash stamp `stamp` (durable =
    /// stamp `<= stamp`). Returns `Err(w)` if the durable set is not
    /// prefix-shaped at `w`'s location — i.e. `w` is durable while an
    /// earlier write to the same location is not, which no cache-line
    /// substrate can produce.
    pub fn realized(
        &self,
        sched: &PersistSchedule,
        stamp: Option<u64>,
    ) -> Result<Vec<usize>, EventId> {
        let durable = |w: EventId| match (sched.stamp(w), stamp) {
            (Some(s), Some(cut)) => s <= cut,
            _ => false,
        };
        let mut cut = vec![0; self.nlocs()];
        for (l, chain) in self.chains.iter().enumerate() {
            let mut k = 0;
            while k < chain.len() && durable(chain[k]) {
                k += 1;
            }
            if let Some(&w) = chain[k..].iter().find(|&&w| durable(w)) {
                return Err(w);
            }
            cut[l] = k;
        }
        Ok(cut)
    }
}

/// Outcome of one lattice walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumStats {
    /// Distinct admissible cuts visited.
    pub states: usize,
    /// True if the `max_states` budget stopped the walk before
    /// exhausting the lattice.
    pub truncated: bool,
}

/// Walks every admissible cut of the lattice (downward closed under
/// `preds`, always per-location prefix-shaped), calling `visit` once
/// per distinct cut. `visit` returns `false` to stop early. At most
/// `max_states` states are visited; exceeding the budget sets
/// [`EnumStats::truncated`].
pub fn enumerate_cuts(
    chains: &WriteChains,
    preds: &[Vec<EventId>],
    max_states: usize,
    visit: &mut dyn FnMut(&[usize]) -> bool,
) -> EnumStats {
    let nl = chains.nlocs();
    let empty = vec![0usize; nl];
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    seen.insert(empty.clone());
    let mut stack = vec![empty];
    let mut truncated = false;
    while let Some(cut) = stack.pop() {
        if !visit(&cut) {
            return EnumStats {
                states: seen.len(),
                truncated,
            };
        }
        for l in 0..nl {
            if cut[l] >= chains.chains[l].len() {
                continue;
            }
            let w = chains.chains[l][cut[l]];
            if !preds[w as usize].iter().all(|&p| chains.includes(&cut, p)) {
                continue;
            }
            let mut next = cut.clone();
            next[l] += 1;
            if !seen.contains(&next) {
                if seen.len() >= max_states {
                    truncated = true;
                    continue;
                }
                seen.insert(next.clone());
                stack.push(next);
            }
        }
    }
    EnumStats {
        states: seen.len(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::persist_preds;
    use lrp_core::PersistDiscipline;
    use lrp_model::litmus::LitmusBuilder;

    /// Two independent plain writes plus one same-address overwrite.
    fn small() -> (Trace, EventId, EventId, EventId) {
        let mut b = LitmusBuilder::new(1);
        let w1 = b.write(0, 0x10, 1);
        let w2 = b.write(0, 0x18, 2);
        let w3 = b.write(0, 0x10, 3);
        (b.build(), w1, w2, w3)
    }

    fn count_cuts(t: &Trace, d: PersistDiscipline) -> usize {
        let chains = WriteChains::new(t);
        let preds = persist_preds(t, d).unwrap();
        let mut n = 0;
        let stats = enumerate_cuts(&chains, &preds, 10_000, &mut |_| {
            n += 1;
            true
        });
        assert!(!stats.truncated);
        assert_eq!(stats.states, n);
        n
    }

    #[test]
    fn unconstrained_lattice_is_the_prefix_product() {
        let (t, ..) = small();
        // Chains: 0x10 has 2 writes (3 prefixes), 0x18 has 1 (2): 6 cuts.
        assert_eq!(count_cuts(&t, PersistDiscipline::Unconstrained), 6);
    }

    #[test]
    fn store_order_restricts_to_po_prefixes() {
        let (t, ..) = small();
        // Store order chains w1 -> w2 -> w3: exactly the 4 po prefixes.
        assert_eq!(count_cuts(&t, PersistDiscipline::StoreOrder), 4);
    }

    #[test]
    fn release_order_only_constrains_the_release() {
        let mut b = LitmusBuilder::new(1);
        let _wa = b.write(0, 0x10, 1);
        let _rel = b.write_rel(0, 0x80, 2);
        let t = b.build();
        // Cuts: {}, {wa}, {wa, rel} — rel without wa is inadmissible.
        assert_eq!(count_cuts(&t, PersistDiscipline::ReleaseOrder), 3);
        assert_eq!(count_cuts(&t, PersistDiscipline::Unconstrained), 4);
    }

    #[test]
    fn budget_truncates_and_reports() {
        let (t, ..) = small();
        let chains = WriteChains::new(&t);
        let preds = persist_preds(&t, PersistDiscipline::Unconstrained).unwrap();
        let stats = enumerate_cuts(&chains, &preds, 2, &mut |_| true);
        assert!(stats.truncated);
        assert_eq!(stats.states, 2);
    }

    #[test]
    fn image_and_overlay_track_last_included_write() {
        let (t, w1, _w2, w3) = small();
        let chains = WriteChains::new(&t);
        // Location order is by address: 0x10 (chain w1,w3), 0x18 (w2).
        let img = chains.image(&t, &[1, 0]);
        assert_eq!(img.read(0x10), 1);
        assert_eq!(img.read(0x18), Trace::POISON);
        let img = chains.image(&t, &[2, 1]);
        assert_eq!(img.read(0x10), 3);
        assert_eq!(img.read(0x18), 2);
        assert_eq!(chains.overlay(&t, &[2, 0]), vec![(0x10, 3)]);
        assert!(chains.includes(&[1, 0], w1));
        assert!(!chains.includes(&[1, 0], w3));
        assert_eq!(chains.included_writes(&[2, 0]), vec![w1, w3]);
    }

    #[test]
    fn realized_cut_matches_stamps_and_rejects_holes() {
        let (t, w1, w2, w3) = small();
        let chains = WriteChains::new(&t);
        let mut sched = PersistSchedule::new(t.events.len());
        sched.set(w1, 0);
        sched.set(w2, 2);
        sched.set(w3, 1);
        assert_eq!(chains.realized(&sched, None).unwrap(), vec![0, 0]);
        assert_eq!(chains.realized(&sched, Some(0)).unwrap(), vec![1, 0]);
        assert_eq!(chains.realized(&sched, Some(1)).unwrap(), vec![2, 0]);
        assert_eq!(chains.realized(&sched, Some(2)).unwrap(), vec![2, 1]);
        // A hole: w3 durable while w1 (same location, earlier) is not.
        let mut holey = PersistSchedule::new(t.events.len());
        holey.set(w3, 0);
        assert_eq!(chains.realized(&holey, Some(0)), Err(w3));
    }
}
