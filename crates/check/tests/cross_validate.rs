//! The headline cross-validation matrix: every simulator mechanism's
//! recorded persist schedule, on every log-free data structure, is
//! admissible under the discipline the mechanism promises, and every
//! crash cut those stamps realize is durably linearizable after null
//! recovery.

use lrp_check::{
    cross_validate, cross_validate_schedule, enumerate_check, generator_preds, mutate_reorder,
    CheckBound,
};
use lrp_core::PersistDiscipline;
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, Sim, SimConfig};

#[test]
fn all_mechanisms_cross_validate_on_all_structures() {
    let bound = CheckBound::default();
    for s in Structure::ALL {
        for m in Mechanism::EXTENDED {
            let r = cross_validate(s, m, &bound)
                .unwrap_or_else(|cx| panic!("{}/{}:\n{cx}", m.name(), s.name()));
            assert_eq!(
                r.waived,
                0,
                "{}/{}: even NOP's realized cuts recover here (it never \
                 flushes, so only the trivial pre-persist cut exists)",
                m.name(),
                s.name()
            );
            if m != Mechanism::Nop {
                assert!(
                    r.crash_points > 1,
                    "{}/{}: the schedule must realize non-trivial crash points",
                    m.name(),
                    s.name()
                );
            }
        }
    }
}

#[test]
fn every_structure_rejects_a_reordered_persist_pair() {
    // The mutation gate: for each structure, swap one persist pair
    // across a release-order generator edge of a real LRP schedule and
    // require the checker to reject it with a counterexample naming
    // the edge.
    let bound = CheckBound {
        ops_per_thread: 8,
        seed: 1,
        ..CheckBound::default()
    };
    for s in Structure::ALL {
        let trace = bound.build_trace(s);
        let run = Sim::new(SimConfig::new(Mechanism::Lrp), &trace).run();
        let preds = generator_preds(&trace, PersistDiscipline::ReleaseOrder).unwrap();
        let Some((mutated, (p, w))) = mutate_reorder(&run.schedule, &preds) else {
            panic!("{}: no reorderable persist pair in an 8-op run", s.name());
        };
        let cx = cross_validate_schedule(
            s,
            PersistDiscipline::ReleaseOrder,
            &trace,
            &mutated,
            "mutation",
        )
        .expect_err("a reordered persist pair must be rejected");
        let text = cx.to_string();
        assert!(
            text.contains(&format!("e{w}")) && text.contains(&format!("e{p}")),
            "{}: counterexample names both ends of the violated edge:\n{text}",
            s.name()
        );
        // The original, unmutated schedule still passes.
        cross_validate_schedule(
            s,
            PersistDiscipline::ReleaseOrder,
            &trace,
            &run.schedule,
            "original",
        )
        .unwrap_or_else(|cx| panic!("{}:\n{cx}", s.name()));
    }
}

#[test]
fn enumerated_lattices_separate_nop_from_the_guaranteed_disciplines() {
    // The paper's claim at lattice level: on the same workload, the
    // unconstrained (NOP) lattice contains unrecoverable cuts while
    // every cut of the guaranteed disciplines recovers and linearizes.
    let bound = CheckBound::default();
    let nop = enumerate_check(
        Structure::LinkedList,
        PersistDiscipline::Unconstrained,
        &bound,
    )
    .unwrap_or_else(|cx| panic!("{cx}"));
    assert!(nop.waived > 0, "NOP must expose unrecoverable cuts");
    for d in [
        PersistDiscipline::StoreOrder,
        PersistDiscipline::EpochOrder,
        PersistDiscipline::ReleaseOrder,
    ] {
        let r = enumerate_check(Structure::LinkedList, d, &bound)
            .unwrap_or_else(|cx| panic!("{d}:\n{cx}"));
        assert_eq!(r.waived, 0);
        assert!(
            !r.stats.truncated,
            "{d}: the bounded lattice fits the budget"
        );
        assert!(
            r.stats.states <= nop.stats.states,
            "{d}: constraining the order can only shrink the lattice"
        );
    }
}
