//! Cross-validation of *slot-stamped* schedules: the serve layer's
//! detectable operations add per-request slot writes (payload words
//! plain, rid word via `write_rel`) to every batch, and those writes
//! must not weaken the checker's guarantees. The recorded persist
//! schedule of a detection-enabled batch has to stay admissible under
//! the mechanism's promised discipline, and every crash cut the stamps
//! realize has to pass null recovery + durable linearizability with
//! the slot region present in the image.

use lrp_check::cross_validate_schedule;
use lrp_serve::{KvOp, Shard, ShardConfig, ShardReq};
use lrp_sim::Mechanism;

fn batch() -> Vec<ShardReq> {
    (0..8u64)
        .map(|i| {
            let key = 1 + (i * 37) % 96;
            let op = match i % 4 {
                0 | 1 => KvOp::Put(key),
                2 => KvOp::Del(key),
                _ => KvOp::Get(key),
            };
            ShardReq::new(op, (5 << 48) | (i + 1))
        })
        .collect()
}

fn shard(mech: Mechanism) -> Shard {
    let mut cfg = ShardConfig::new(lrp_lfds::Structure::HashMap);
    cfg.mechanism = mech;
    cfg.initial_size = 16;
    cfg.key_range = 96;
    cfg.seed = 7;
    Shard::new(cfg)
}

#[test]
fn slot_stamped_batches_cross_validate_under_every_mechanism() {
    for mech in [Mechanism::Lrp, Mechanism::Sb, Mechanism::Bb, Mechanism::Dpo] {
        let mut s = shard(mech);
        let (trace, sched) = s.replay_for_check(&batch());

        // The slot stamps are really in the trace — as first-class
        // events carrying the `slot` site phase — not smuggled through
        // a side channel the oracle cannot see.
        let slot_sites: Vec<u16> = trace
            .site_names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.ends_with("/slot"))
            .map(|(i, _)| i as u16)
            .collect();
        assert!(
            !slot_sites.is_empty(),
            "{}: no slot site label in the batch trace",
            mech.name()
        );
        let stamped = trace
            .event_sites
            .iter()
            .filter(|s| slot_sites.contains(s))
            .count();
        assert!(
            stamped > 0,
            "{}: no event attributed to the slot phase",
            mech.name()
        );

        let title = format!("slot-stamped {}/hashmap", mech.name());
        let report = cross_validate_schedule(
            lrp_lfds::Structure::HashMap,
            mech.discipline(),
            &trace,
            &sched,
            &title,
        )
        .unwrap_or_else(|cx| panic!("{title}:\n{cx}"));
        assert_eq!(report.waived, 0, "{title}: no waived cuts");
        assert!(
            report.crash_points > 1,
            "{title}: the schedule must realize non-trivial crash points"
        );
    }
}

#[test]
fn disabling_detection_removes_the_slot_phase_but_still_validates() {
    let mut cfg = ShardConfig::new(lrp_lfds::Structure::HashMap);
    cfg.mechanism = Mechanism::Lrp;
    cfg.initial_size = 16;
    cfg.key_range = 96;
    cfg.seed = 7;
    cfg.detect = None;
    let mut s = Shard::new(cfg);
    let (trace, sched) = s.replay_for_check(&batch());
    assert!(
        !trace.site_names.iter().any(|n| n.ends_with("/slot")),
        "detection disabled, yet the trace carries slot events"
    );
    cross_validate_schedule(
        lrp_lfds::Structure::HashMap,
        Mechanism::Lrp.discipline(),
        &trace,
        &sched,
        "no-detect lrp/hashmap",
    )
    .unwrap_or_else(|cx| panic!("{cx}"));
}
