//! Workload-mix and harness-option tests for the five LFDs.

use lrp_exec::{DirectCtx, Xorshift64};
use lrp_lfds::bst::Bst;
use lrp_lfds::hashmap::HashMap;
use lrp_lfds::list::LinkedList;
use lrp_lfds::queue::Queue;
use lrp_lfds::skiplist::SkipList;
use lrp_lfds::{validate_image, MemImage, Structure, WorkloadSpec};
use lrp_model::OpKind;

#[test]
fn read_heavy_mix_produces_mostly_contains() {
    for s in [Structure::LinkedList, Structure::HashMap, Structure::Bst] {
        let t = WorkloadSpec::new(s)
            .initial_size(32)
            .threads(2)
            .ops_per_thread(40)
            .read_pct(90)
            .seed(8)
            .build_trace();
        let contains = t
            .markers
            .iter()
            .filter(|m| matches!(m.op, OpKind::Contains(_)))
            .count();
        assert!(
            contains > 40,
            "{s}: expected mostly reads, got {contains}/80"
        );
    }
}

#[test]
fn update_results_are_recorded_in_markers() {
    let t = WorkloadSpec::new(Structure::HashMap)
        .initial_size(16)
        .threads(2)
        .ops_per_thread(30)
        .seed(14)
        .build_trace();
    let succ_inserts = t
        .markers
        .iter()
        .filter(|m| matches!(m.op, OpKind::Insert(..)) && m.result == 1)
        .count();
    let succ_deletes = t
        .markers
        .iter()
        .filter(|m| matches!(m.op, OpKind::Delete(_)) && m.result == 1)
        .count();
    assert!(succ_inserts > 0 && succ_deletes > 0);
    // Steady state: final size = initial + inserts - deletes.
    let img = MemImage::new(t.final_mem());
    let rec = validate_image(Structure::HashMap, &t.roots, &img).unwrap();
    let initial_img = MemImage::new(t.initial_mem.iter().copied());
    let initial = validate_image(Structure::HashMap, &t.roots, &initial_img).unwrap();
    assert_eq!(
        rec.keys().len() as i64,
        initial.keys().len() as i64 + succ_inserts as i64 - succ_deletes as i64
    );
}

#[test]
fn marker_event_ranges_nest_properly() {
    let t = WorkloadSpec::new(Structure::SkipList)
        .initial_size(16)
        .threads(3)
        .ops_per_thread(10)
        .seed(4)
        .build_trace();
    for m in &t.markers {
        assert!(m.first_event <= m.end_event);
        assert!((m.end_event as usize) <= t.events.len());
        // Every event in the marker's range from the same thread belongs
        // to this operation (ops do not overlap within a thread).
        for e in &t.events[m.first_event as usize..m.end_event as usize] {
            if e.tid == m.tid {
                // belongs to this op by construction
            }
        }
    }
    // Per-thread markers are contiguous and ordered.
    for tid in 0..t.nthreads {
        let mine: Vec<_> = t.markers.iter().filter(|m| m.tid == tid).collect();
        for w in mine.windows(2) {
            assert!(w[0].first_event <= w[1].first_event);
        }
    }
}

/// Cross-structure differential test: the same op sequence applied to
/// all four set structures must produce the same abstract set.
#[test]
fn set_structures_agree_on_random_histories() {
    let mut c = DirectCtx::new(1, 99);
    let list = LinkedList::new(&mut c);
    let map = HashMap::new(&mut c, 16);
    let bst = Bst::new(&mut c);
    let skip = SkipList::new(&mut c);
    let mut rng = Xorshift64::new(1234);
    for _ in 0..800 {
        let k = rng.below(64) + 1;
        if rng.below(2) == 0 {
            let a = list.insert(&mut c, k, k);
            let b = map.insert(&mut c, k, k);
            let d = bst.insert(&mut c, k, k);
            let e = skip.insert(&mut c, k, k);
            assert!(a == b && b == d && d == e, "insert {k} disagrees");
        } else {
            let a = list.delete(&mut c, k);
            let b = map.delete(&mut c, k);
            let d = bst.delete(&mut c, k);
            let e = skip.delete(&mut c, k);
            assert!(a == b && b == d && d == e, "delete {k} disagrees");
        }
    }
    for k in 1..=64 {
        let a = list.contains(&mut c, k);
        assert_eq!(a, map.contains(&mut c, k), "contains {k}");
        assert_eq!(a, bst.contains(&mut c, k), "contains {k}");
        assert_eq!(a, skip.contains(&mut c, k), "contains {k}");
    }
}

/// Queue drain test: enqueue/dequeue churn ends empty and FIFO.
#[test]
fn queue_churn_preserves_fifo() {
    let mut c = DirectCtx::new(1, 7);
    let q = Queue::new(&mut c);
    let mut expected = std::collections::VecDeque::new();
    let mut rng = Xorshift64::new(5);
    let mut next = 1u64;
    for _ in 0..1000 {
        if rng.below(2) == 0 {
            q.enqueue(&mut c, next);
            expected.push_back(next);
            next += 1;
        } else {
            assert_eq!(q.dequeue(&mut c), expected.pop_front());
        }
    }
    while let Some(v) = expected.pop_front() {
        assert_eq!(q.dequeue(&mut c), Some(v));
    }
    assert_eq!(q.dequeue(&mut c), None);
}

#[test]
fn explicit_nbuckets_is_respected() {
    let t = WorkloadSpec::new(Structure::HashMap)
        .initial_size(16)
        .nbuckets(8)
        .threads(1)
        .ops_per_thread(2)
        .build_trace();
    let n = t.roots.iter().find(|(n, _)| n == "nbuckets").unwrap().1;
    assert_eq!(n, 8);
}

#[test]
fn single_thread_single_op_traces_work() {
    for s in Structure::ALL {
        let t = WorkloadSpec::new(s)
            .initial_size(4)
            .threads(1)
            .ops_per_thread(1)
            .seed(2)
            .build_trace();
        t.validate().unwrap();
        assert_eq!(t.markers.len(), 1, "{s}");
    }
}

#[test]
fn zero_initial_size_structures_still_operate() {
    for s in Structure::ALL {
        let t = WorkloadSpec::new(s)
            .initial_size(0)
            .key_range(16)
            .threads(2)
            .ops_per_thread(8)
            .seed(3)
            .build_trace();
        t.validate().unwrap_or_else(|e| panic!("{s}: {e}"));
        let img = MemImage::new(t.final_mem());
        validate_image(s, &t.roots, &img).unwrap_or_else(|e| panic!("{s}: {e}"));
    }
}
