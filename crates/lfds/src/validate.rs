//! Structural recovery validators.
//!
//! After a (simulated) crash, the NVM holds some prefix of the persist
//! order. *Null recovery* (§2.3) means the structure is usable as-is;
//! these validators walk a raw memory image from the registered roots and
//! check every structural invariant, in particular that **no reachable
//! field is unpersisted garbage** — the exact failure Figure 1 shows ARP
//! permits (a linked node whose contents never persisted).
//!
//! Unwritten NVM words read as [`Trace::POISON`], so "garbage" is
//! detectable deterministically.

use crate::ptr::{addr, marked};
use crate::{bst, harness::Structure, list, queue, skiplist};
use lrp_model::{Addr, Trace};
use std::collections::{BTreeSet, HashMap as StdHashMap};

/// A raw word-granular memory image (e.g. reconstructed NVM contents).
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    words: StdHashMap<Addr, u64>,
}

impl MemImage {
    /// Builds an image from `(addr, value)` pairs.
    pub fn new(words: impl IntoIterator<Item = (Addr, u64)>) -> Self {
        MemImage {
            words: words.into_iter().collect(),
        }
    }

    /// Reads a word ([`Trace::POISON`] if never persisted).
    pub fn read(&self, a: Addr) -> u64 {
        self.words.get(&a).copied().unwrap_or(Trace::POISON)
    }

    /// Writes a word (used when replaying persists onto an image).
    pub fn write(&mut self, a: Addr, v: u64) {
        self.words.insert(a, v);
    }

    /// Number of words present.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the image has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

fn poison(v: u64) -> bool {
    v == Trace::POISON
}

/// Why a recovered image failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A reachable word holds unpersisted garbage — the ARP failure mode.
    Garbage {
        /// Address of the poisoned word.
        at: Addr,
        /// What the walker was doing.
        context: &'static str,
    },
    /// Ordering/shape invariant broken.
    Shape(String),
    /// Traversal exceeded the step budget (pointer cycle).
    Cycle(&'static str),
    /// A required root is missing from the trace.
    MissingRoot(&'static str),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Garbage { at, context } => {
                write!(f, "unpersisted garbage at {at:#x} while {context}")
            }
            ValidationError::Shape(s) => write!(f, "shape invariant violated: {s}"),
            ValidationError::Cycle(c) => write!(f, "cycle detected in {c}"),
            ValidationError::MissingRoot(r) => write!(f, "missing root {r}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// The abstract contents recovered from a valid image.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Recovered {
    /// Set/map structures: the present (unmarked, non-sentinel) keys.
    Set(BTreeSet<u64>),
    /// Queue: the values from head to tail.
    Queue(Vec<u64>),
}

impl Recovered {
    /// The key set (panics for queues).
    pub fn keys(&self) -> &BTreeSet<u64> {
        match self {
            Recovered::Set(s) => s,
            Recovered::Queue(_) => panic!("queue state has no key set"),
        }
    }

    /// Deterministic one-line rendering for reports and
    /// counterexamples: `set{k1, k2, ...}` or `queue[v1, v2, ...]`.
    pub fn render(&self) -> String {
        fn join(it: impl Iterator<Item = u64>) -> String {
            it.map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
        }
        match self {
            Recovered::Set(s) => format!("set{{{}}}", join(s.iter().copied())),
            Recovered::Queue(v) => format!("queue[{}]", join(v.iter().copied())),
        }
    }
}

const STEP_LIMIT: usize = 4_000_000;

fn root(roots: &[(String, Addr)], name: &'static str) -> Result<Addr, ValidationError> {
    roots
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, a)| a)
        .ok_or(ValidationError::MissingRoot(name))
}

/// Validates one Harris-list chain starting at the pointer word
/// `head_loc`; returns the unmarked keys in order.
fn validate_chain(
    img: &MemImage,
    head_loc: Addr,
    check_key: &dyn Fn(u64) -> Result<(), ValidationError>,
) -> Result<Vec<u64>, ValidationError> {
    let mut out = Vec::new();
    let head_raw = img.read(head_loc);
    if poison(head_raw) {
        return Err(ValidationError::Garbage {
            at: head_loc,
            context: "reading list head",
        });
    }
    let mut cur = addr(head_raw);
    let mut last_key: Option<u64> = None;
    let mut steps = 0;
    while cur != 0 {
        steps += 1;
        if steps > STEP_LIMIT {
            return Err(ValidationError::Cycle("list chain"));
        }
        let key = img.read(cur + list::KEY);
        let val = img.read(cur + list::VAL);
        let next_raw = img.read(cur + list::NEXT);
        if poison(key) {
            return Err(ValidationError::Garbage {
                at: cur + list::KEY,
                context: "reading node key",
            });
        }
        if poison(val) {
            return Err(ValidationError::Garbage {
                at: cur + list::VAL,
                context: "reading node value",
            });
        }
        if poison(next_raw) {
            return Err(ValidationError::Garbage {
                at: cur + list::NEXT,
                context: "reading node next",
            });
        }
        if let Some(lk) = last_key {
            if key <= lk {
                return Err(ValidationError::Shape(format!(
                    "list keys not strictly increasing: {lk} then {key}"
                )));
            }
        }
        check_key(key)?;
        last_key = Some(key);
        if !marked(next_raw) {
            out.push(key);
        }
        cur = addr(next_raw);
    }
    Ok(out)
}

fn validate_list(img: &MemImage, roots: &[(String, Addr)]) -> Result<Recovered, ValidationError> {
    let head = root(roots, "head")?;
    let keys = validate_chain(img, head, &|_| Ok(()))?;
    Ok(Recovered::Set(keys.into_iter().collect()))
}

fn validate_hashmap(
    img: &MemImage,
    roots: &[(String, Addr)],
) -> Result<Recovered, ValidationError> {
    let buckets = root(roots, "buckets")?;
    let nbuckets = root(roots, "nbuckets")?;
    let map = crate::hashmap::HashMap { buckets, nbuckets };
    let mut all = BTreeSet::new();
    for i in 0..nbuckets {
        let loc = buckets + 8 * i;
        let keys = validate_chain(img, loc, &|k| {
            // Every key must hash to the bucket it sits in.
            let h = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
            if h % map.nbuckets == i {
                Ok(())
            } else {
                Err(ValidationError::Shape(format!(
                    "key {k} found in bucket {i} but hashes elsewhere"
                )))
            }
        })?;
        all.extend(keys);
    }
    Ok(Recovered::Set(all))
}

fn validate_bst(img: &MemImage, roots: &[(String, Addr)]) -> Result<Recovered, ValidationError> {
    let r = root(roots, "bst_r")?;
    let mut out = BTreeSet::new();
    // Explicit stack: (node, lo inclusive, hi inclusive).
    let mut stack = vec![(r, 0u64, u64::MAX)];
    let mut steps = 0;
    while let Some((node, lo, hi)) = stack.pop() {
        steps += 1;
        if steps > STEP_LIMIT {
            return Err(ValidationError::Cycle("bst"));
        }
        let key = img.read(node + bst::KEY);
        if poison(key) {
            return Err(ValidationError::Garbage {
                at: node + bst::KEY,
                context: "reading bst key",
            });
        }
        if key < lo || key > hi {
            return Err(ValidationError::Shape(format!(
                "bst key {key} outside [{lo}, {hi}]"
            )));
        }
        let l_raw = img.read(node + bst::LEFT);
        let r_raw = img.read(node + bst::RIGHT);
        if poison(l_raw) || poison(r_raw) {
            return Err(ValidationError::Garbage {
                at: node + bst::LEFT,
                context: "reading bst child",
            });
        }
        let l = addr(l_raw);
        let rgt = addr(r_raw);
        match (l, rgt) {
            (0, 0) => {
                let val = img.read(node + bst::VAL);
                if poison(val) {
                    return Err(ValidationError::Garbage {
                        at: node + bst::VAL,
                        context: "reading bst leaf value",
                    });
                }
                if key < bst::INF1 {
                    out.insert(key);
                }
            }
            (0, _) | (_, 0) => {
                return Err(ValidationError::Shape(format!(
                    "internal bst node {node:#x} with exactly one child"
                )))
            }
            _ => {
                // Bounds are inclusive at the routing key (the sentinel
                // construction places equal keys on both sides).
                stack.push((l, lo, key));
                stack.push((rgt, key, hi));
            }
        }
    }
    Ok(Recovered::Set(out))
}

fn validate_skiplist(
    img: &MemImage,
    roots: &[(String, Addr)],
) -> Result<Recovered, ValidationError> {
    let head = root(roots, "sl_head")?;
    // Level 0 is the ground truth.
    let mut present = BTreeSet::new();
    let mut cur = {
        let raw = img.read(head + skiplist::next_off(0));
        if poison(raw) {
            return Err(ValidationError::Garbage {
                at: head + skiplist::next_off(0),
                context: "reading skiplist head",
            });
        }
        addr(raw)
    };
    let mut last_key = 0u64;
    let mut steps = 0;
    while cur != 0 {
        steps += 1;
        if steps > STEP_LIMIT {
            return Err(ValidationError::Cycle("skiplist level 0"));
        }
        let key = img.read(cur + skiplist::KEY);
        let val = img.read(cur + skiplist::VAL);
        let top = img.read(cur + skiplist::TOP);
        if poison(key) || poison(val) || poison(top) {
            return Err(ValidationError::Garbage {
                at: cur + skiplist::KEY,
                context: "reading skiplist node header",
            });
        }
        if !(1..=skiplist::MAX_LEVEL as u64).contains(&top) {
            return Err(ValidationError::Shape(format!(
                "skiplist tower height {top} out of range"
            )));
        }
        if key <= last_key {
            return Err(ValidationError::Shape(format!(
                "skiplist level-0 keys not increasing: {last_key} then {key}"
            )));
        }
        last_key = key;
        let raw0 = img.read(cur + skiplist::next_off(0));
        if poison(raw0) {
            return Err(ValidationError::Garbage {
                at: cur + skiplist::next_off(0),
                context: "reading skiplist next",
            });
        }
        if !marked(raw0) {
            present.insert(key);
        }
        cur = addr(raw0);
    }
    // Upper levels: sorted chains of structurally valid nodes. A node may
    // be linked above but already unlinked at level 0 (crash mid-delete);
    // that is recoverable, so only integrity is required.
    for lvl in 1..skiplist::MAX_LEVEL {
        let mut cur = addr(img.read(head + skiplist::next_off(lvl)));
        let mut last = 0u64;
        let mut steps = 0;
        while cur != 0 {
            steps += 1;
            if steps > STEP_LIMIT {
                return Err(ValidationError::Cycle("skiplist upper level"));
            }
            let key = img.read(cur + skiplist::KEY);
            let raw = img.read(cur + skiplist::next_off(lvl));
            if poison(key) || poison(raw) {
                return Err(ValidationError::Garbage {
                    at: cur,
                    context: "reading skiplist upper level",
                });
            }
            if key <= last {
                return Err(ValidationError::Shape(format!(
                    "skiplist level-{lvl} keys not increasing"
                )));
            }
            last = key;
            cur = addr(raw);
        }
    }
    Ok(Recovered::Set(present))
}

fn validate_queue(img: &MemImage, roots: &[(String, Addr)]) -> Result<Recovered, ValidationError> {
    let anchor = root(roots, "q_anchor")?;
    let head = img.read(anchor);
    let tail = img.read(anchor + 8);
    if poison(head) || poison(tail) {
        return Err(ValidationError::Garbage {
            at: anchor,
            context: "reading queue anchor",
        });
    }
    // Walk from head; values strictly after the dummy are the contents.
    let mut out = Vec::new();
    let mut cur = head;
    let mut first = true;
    let mut steps = 0;
    let mut saw_tail = head == tail;
    while cur != 0 {
        steps += 1;
        if steps > STEP_LIMIT {
            return Err(ValidationError::Cycle("queue chain"));
        }
        let next_raw = img.read(cur + queue::NEXT);
        if poison(next_raw) {
            return Err(ValidationError::Garbage {
                at: cur + queue::NEXT,
                context: "reading queue next",
            });
        }
        if !first {
            let val = img.read(cur + queue::VAL);
            if poison(val) {
                return Err(ValidationError::Garbage {
                    at: cur + queue::VAL,
                    context: "reading queue value",
                });
            }
            out.push(val);
        }
        if cur == tail {
            saw_tail = true;
        }
        first = false;
        cur = next_raw;
    }
    // The tail pointer is only a hint (its swing CAS is plain): across a
    // crash it may point at a node whose fields never persisted, or lag
    // arbitrarily. Recovery reconstructs it by walking from head, so its
    // chain is deliberately NOT validated.
    let _ = saw_tail;
    Ok(Recovered::Queue(out))
}

/// Validates a recovered memory image for `structure`, returning the
/// abstract contents on success.
pub fn validate_image(
    structure: Structure,
    roots: &[(String, Addr)],
    img: &MemImage,
) -> Result<Recovered, ValidationError> {
    match structure {
        Structure::LinkedList => validate_list(img, roots),
        Structure::HashMap => validate_hashmap(img, roots),
        Structure::Bst => validate_bst(img, roots),
        Structure::SkipList => validate_skiplist(img, roots),
        Structure::Queue => validate_queue(img, roots),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::WorkloadSpec;

    fn image_of(trace: &Trace) -> MemImage {
        MemImage::new(trace.final_mem())
    }

    fn run_and_validate(structure: Structure) -> Recovered {
        let spec = WorkloadSpec::new(structure)
            .initial_size(24)
            .threads(3)
            .ops_per_thread(20)
            .seed(5);
        let trace = spec.build_trace();
        trace.validate().unwrap();
        validate_image(structure, &trace.roots, &image_of(&trace)).unwrap()
    }

    #[test]
    fn final_states_validate_for_all_structures() {
        for s in Structure::ALL {
            let r = run_and_validate(s);
            match r {
                Recovered::Set(keys) => assert!(!keys.is_empty(), "{s:?} should retain keys"),
                Recovered::Queue(_) => {}
            }
        }
    }

    #[test]
    fn garbage_key_is_detected() {
        let spec = WorkloadSpec::new(Structure::LinkedList)
            .initial_size(8)
            .threads(1)
            .ops_per_thread(4);
        let trace = spec.build_trace();
        let mut img = image_of(&trace);
        // Poison the key of the first reachable node.
        let head = trace.roots[0].1;
        let first = crate::ptr::addr(img.read(head));
        assert_ne!(first, 0);
        img.write(first + list::KEY, Trace::POISON);
        let err = validate_image(Structure::LinkedList, &trace.roots, &img).unwrap_err();
        assert!(matches!(err, ValidationError::Garbage { .. }));
    }

    #[test]
    fn unsorted_list_is_detected() {
        let spec = WorkloadSpec::new(Structure::LinkedList)
            .initial_size(8)
            .threads(1)
            .ops_per_thread(0);
        let trace = spec.build_trace();
        let mut img = image_of(&trace);
        let head = trace.roots[0].1;
        let first = crate::ptr::addr(img.read(head));
        img.write(first + list::KEY, u64::MAX - 3);
        let err = validate_image(Structure::LinkedList, &trace.roots, &img).unwrap_err();
        assert!(matches!(err, ValidationError::Shape(_)));
    }

    #[test]
    fn cycle_is_detected() {
        let spec = WorkloadSpec::new(Structure::LinkedList)
            .initial_size(4)
            .threads(1)
            .ops_per_thread(0);
        let trace = spec.build_trace();
        let mut img = image_of(&trace);
        let head = trace.roots[0].1;
        let first = crate::ptr::addr(img.read(head));
        img.write(first + list::NEXT, first);
        let err = validate_image(Structure::LinkedList, &trace.roots, &img).unwrap_err();
        // A self-loop repeats the same key, which trips either the sort
        // check or the step limit; both reject the image.
        assert!(matches!(
            err,
            ValidationError::Cycle(_) | ValidationError::Shape(_)
        ));
    }

    #[test]
    fn bst_one_child_internal_is_detected() {
        let spec = WorkloadSpec::new(Structure::Bst)
            .initial_size(8)
            .threads(1)
            .ops_per_thread(0);
        let trace = spec.build_trace();
        let mut img = image_of(&trace);
        let r = trace.roots.iter().find(|(n, _)| n == "bst_r").unwrap().1;
        let s = crate::ptr::addr(img.read(r + bst::LEFT));
        img.write(s + bst::RIGHT, 0);
        let err = validate_image(Structure::Bst, &trace.roots, &img).unwrap_err();
        assert!(matches!(err, ValidationError::Shape(_)));
    }

    #[test]
    fn missing_root_is_reported() {
        let img = MemImage::default();
        let err = validate_image(Structure::Queue, &[], &img).unwrap_err();
        assert_eq!(err, ValidationError::MissingRoot("q_anchor"));
    }

    #[test]
    fn queue_contents_match_history() {
        let spec = WorkloadSpec::new(Structure::Queue)
            .initial_size(10)
            .threads(2)
            .ops_per_thread(10)
            .seed(3);
        let trace = spec.build_trace();
        let r = validate_image(Structure::Queue, &trace.roots, &image_of(&trace)).unwrap();
        match r {
            Recovered::Queue(values) => {
                // No duplicates in the live queue.
                let mut s = values.clone();
                s.sort_unstable();
                s.dedup();
                assert_eq!(s.len(), values.len());
            }
            _ => panic!("queue expected"),
        }
    }
}
