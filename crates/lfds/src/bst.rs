//! Natarajan–Mittal lock-free external binary search tree \[32\] — the
//! paper's `bstree` workload.
//!
//! An *external* BST: keys live in leaves; internal nodes route
//! (`key < node.key` goes left, else right). Deletion is edge-based: the
//! deleter *flags* the edge to the victim leaf (injection — the
//! linearization point), *tags* the sibling edge to freeze it, then
//! splices the sibling up over the whole parent subtree with one CAS at
//! the ancestor. Other operations that trip over flagged/tagged edges
//! help finish the removal.
//!
//! Node layout (4 words): `[key, value, left, right]`. Leaves have both
//! child words zero. Child words carry the flag (bit 0) and tag (bit 1).
//!
//! Sentinels: `R(∞₂)` with `R.left = S`, `R.right = leaf(∞₂)`;
//! `S(∞₁)` with `S.left = leaf(∞₁)`, `S.right = leaf(∞₂)`. All real keys
//! are `< ∞₁`, so `R` and `S` are never spliced out and the `∞₁` leaf
//! keeps `S`'s left subtree non-empty forever.

use crate::ptr::{addr, marked, pack, tagged, with_tag};
use lrp_exec::PmemCtx;
use lrp_model::Addr;

/// Byte offset of the key word.
pub const KEY: Addr = 0;
/// Byte offset of the value word.
pub const VAL: Addr = 8;
/// Byte offset of the left-child word.
pub const LEFT: Addr = 16;
/// Byte offset of the right-child word.
pub const RIGHT: Addr = 24;
/// Words per node.
pub const NODE_WORDS: usize = 4;

/// First infinity sentinel key (all real keys must be smaller).
pub const INF1: u64 = u64::MAX - 1;
/// Second infinity sentinel key.
pub const INF2: u64 = u64::MAX;

/// Result of a seek: the last two nodes on the search path and the last
/// untagged edge above them.
struct Seek {
    ancestor: Addr,
    successor: Addr,
    parent: Addr,
    leaf: Addr,
    leaf_key: u64,
}

/// Lock-free external BST handle.
#[derive(Debug, Clone, Copy)]
pub struct Bst {
    /// Root sentinel `R`.
    pub r: Addr,
    /// Second sentinel `S` (= `R.left`, immutable).
    pub s: Addr,
}

fn new_leaf<C: PmemCtx>(ctx: &mut C, key: u64, value: u64) -> Addr {
    let n = ctx.alloc(NODE_WORDS);
    ctx.write(n + KEY, key);
    ctx.write(n + VAL, value);
    ctx.write(n + LEFT, 0);
    ctx.write(n + RIGHT, 0);
    n
}

fn new_internal<C: PmemCtx>(ctx: &mut C, key: u64, left: Addr, right: Addr) -> Addr {
    let n = ctx.alloc(NODE_WORDS);
    ctx.write(n + KEY, key);
    ctx.write(n + VAL, 0);
    ctx.write(n + LEFT, left);
    ctx.write(n + RIGHT, right);
    n
}

impl Bst {
    /// Builds the sentinel skeleton.
    pub fn new<C: PmemCtx>(ctx: &mut C) -> Self {
        let l_inf1 = new_leaf(ctx, INF1, 0);
        let l_inf2a = new_leaf(ctx, INF2, 0);
        let l_inf2b = new_leaf(ctx, INF2, 0);
        let s = new_internal(ctx, INF1, l_inf1, l_inf2a);
        let r = new_internal(ctx, INF2, s, l_inf2b);
        Bst { r, s }
    }

    fn child_off(key: u64, node_key: u64) -> Addr {
        if key < node_key {
            LEFT
        } else {
            RIGHT
        }
    }

    fn seek<C: PmemCtx>(&self, ctx: &mut C, key: u64) -> Seek {
        let mut ancestor = self.r;
        let mut successor = self.s;
        let mut parent = self.s;
        let mut parent_field = ctx.read_acq(self.s + LEFT);
        let mut leaf = addr(parent_field);
        let mut leaf_key = ctx.read(leaf + KEY);
        let mut current_field = ctx.read_acq(leaf + Self::child_off(key, leaf_key));
        let mut current = addr(current_field);
        while current != 0 {
            if !tagged(parent_field) {
                ancestor = parent;
                successor = leaf;
            }
            parent = leaf;
            parent_field = current_field;
            leaf = current;
            leaf_key = ctx.read(leaf + KEY);
            current_field = ctx.read_acq(leaf + Self::child_off(key, leaf_key));
            current = addr(current_field);
        }
        Seek {
            ancestor,
            successor,
            parent,
            leaf,
            leaf_key,
        }
    }

    /// Finishes (or helps finish) the removal of a flagged leaf around
    /// `key`'s search path. Returns true if the splice CAS succeeded.
    fn cleanup<C: PmemCtx>(&self, ctx: &mut C, key: u64, sk: &Seek) -> bool {
        let parent = sk.parent;
        let pkey = ctx.read(parent + KEY);
        let (child_off, other_off) = if key < pkey {
            (LEFT, RIGHT)
        } else {
            (RIGHT, LEFT)
        };
        let child_val = ctx.read_acq(parent + child_off);
        // If the key-side edge is not flagged, we got here through the
        // tagged sibling edge of someone else's delete: the survivor to
        // splice up is the key-side child itself.
        let sib_off = if marked(child_val) {
            other_off
        } else {
            child_off
        };
        // Freeze the sibling edge.
        loop {
            let sv = ctx.read_acq(parent + sib_off);
            if tagged(sv) {
                break;
            }
            if ctx.cas_rel(parent + sib_off, sv, with_tag(sv)).0 {
                break;
            }
        }
        let sv = ctx.read_acq(parent + sib_off);
        // Splice the sibling up over the whole parent subtree, preserving
        // its flag (a concurrent delete of the sibling leaf survives the
        // move) and clearing the tag.
        let akey = ctx.read(sk.ancestor + KEY);
        let succ_off = Self::child_off(key, akey);
        ctx.cas_rel(
            sk.ancestor + succ_off,
            pack(sk.successor, false, false),
            pack(addr(sv), marked(sv), false),
        )
        .0
    }

    /// Inserts `(key, value)`; false if present. `key` must be `< INF1`.
    pub fn insert<C: PmemCtx>(&self, ctx: &mut C, key: u64, value: u64) -> bool {
        debug_assert!(key < INF1);
        loop {
            let sk = self.seek(ctx, key);
            if sk.leaf_key == key {
                return false;
            }
            let pkey = ctx.read(sk.parent + KEY);
            let child_off = Self::child_off(key, pkey);
            // Prepare the new leaf and its routing internal node.
            let leaf = new_leaf(ctx, key, value);
            let (l, rgt, ikey) = if key < sk.leaf_key {
                (leaf, sk.leaf, sk.leaf_key)
            } else {
                (sk.leaf, leaf, key)
            };
            let internal = new_internal(ctx, ikey, l, rgt);
            let (ok, cur) = ctx.cas_rel(
                sk.parent + child_off,
                pack(sk.leaf, false, false),
                pack(internal, false, false),
            );
            if ok {
                return true;
            }
            // Help an in-progress delete blocking this edge.
            if addr(cur) == sk.leaf && (marked(cur) || tagged(cur)) {
                self.cleanup(ctx, key, &sk);
            }
        }
    }

    /// Deletes `key`; false if absent.
    pub fn delete<C: PmemCtx>(&self, ctx: &mut C, key: u64) -> bool {
        debug_assert!(key < INF1);
        let mut injected = false;
        let mut target = 0;
        loop {
            let sk = self.seek(ctx, key);
            if !injected {
                if sk.leaf_key != key {
                    return false;
                }
                let pkey = ctx.read(sk.parent + KEY);
                let child_off = Self::child_off(key, pkey);
                let (ok, cur) = ctx.cas_rel(
                    sk.parent + child_off,
                    pack(sk.leaf, false, false),
                    pack(sk.leaf, true, false),
                );
                if ok {
                    // Injection succeeded — the delete is now linearized.
                    injected = true;
                    target = sk.leaf;
                    if self.cleanup(ctx, key, &sk) {
                        return true;
                    }
                } else if addr(cur) == sk.leaf && (marked(cur) || tagged(cur)) {
                    self.cleanup(ctx, key, &sk);
                }
            } else {
                if sk.leaf != target {
                    // A helper finished the physical removal.
                    return true;
                }
                if self.cleanup(ctx, key, &sk) {
                    return true;
                }
            }
        }
    }

    /// Membership test (read-only seek).
    pub fn contains<C: PmemCtx>(&self, ctx: &mut C, key: u64) -> bool {
        let sk = self.seek(ctx, key);
        sk.leaf_key == key
    }

    /// Pre-populates with sorted `keys` by building a balanced external
    /// tree directly under `S.left`, preserving the `∞₁` sentinel leaf.
    pub fn populate<C: PmemCtx>(&self, ctx: &mut C, keys: &[u64]) {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
        if keys.is_empty() {
            return;
        }
        fn build<C: PmemCtx>(ctx: &mut C, keys: &[u64]) -> Addr {
            if keys.len() == 1 {
                new_leaf(ctx, keys[0], keys[0])
            } else {
                let mid = keys.len() / 2;
                let l = build(ctx, &keys[..mid]);
                let r = build(ctx, &keys[mid..]);
                new_internal(ctx, keys[mid], l, r)
            }
        }
        let subtree = build(ctx, keys);
        let old_inf1_leaf = addr(ctx.read(self.s + LEFT));
        let top = new_internal(ctx, INF1, subtree, old_inf1_leaf);
        ctx.write(self.s + LEFT, top);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_exec::{run, DirectCtx, ExecConfig, GateCtx, SchedPolicy, ThreadBody};

    fn fresh() -> (DirectCtx, Bst) {
        let mut c = DirectCtx::new(1, 7);
        let b = Bst::new(&mut c);
        (c, b)
    }

    #[test]
    fn empty_tree_contains_nothing() {
        let (mut c, b) = fresh();
        assert!(!b.contains(&mut c, 1));
        assert!(!b.delete(&mut c, 1));
    }

    #[test]
    fn insert_contains_delete() {
        let (mut c, b) = fresh();
        for k in [5, 2, 8, 1, 9, 3] {
            assert!(b.insert(&mut c, k, k * 10), "insert {k}");
        }
        for k in [5, 2, 8, 1, 9, 3] {
            assert!(b.contains(&mut c, k), "contains {k}");
        }
        assert!(!b.contains(&mut c, 4));
        assert!(!b.insert(&mut c, 5, 0));
        assert!(b.delete(&mut c, 5));
        assert!(!b.contains(&mut c, 5));
        assert!(!b.delete(&mut c, 5));
        assert!(b.insert(&mut c, 5, 1), "reinsert after delete");
    }

    #[test]
    fn delete_root_key_repeatedly() {
        let (mut c, b) = fresh();
        for k in 1..=10 {
            b.insert(&mut c, k, k);
        }
        for k in 1..=10 {
            assert!(b.delete(&mut c, k), "delete {k}");
            assert!(!b.contains(&mut c, k));
        }
        // Tree drained to sentinels; still usable.
        assert!(b.insert(&mut c, 42, 42));
        assert!(b.contains(&mut c, 42));
    }

    #[test]
    fn populate_matches_inserts() {
        let (mut c, b) = fresh();
        let keys: Vec<u64> = (1..=31).collect();
        b.populate(&mut c, &keys);
        for k in 1..=31 {
            assert!(b.contains(&mut c, k), "missing {k}");
            assert!(!b.insert(&mut c, k, 0));
        }
        assert!(b.delete(&mut c, 16));
        assert!(!b.contains(&mut c, 16));
        assert!(b.insert(&mut c, 100, 1));
    }

    #[test]
    fn sequential_model_check() {
        let (mut c, b) = fresh();
        let mut model = std::collections::BTreeSet::new();
        let mut rng = lrp_exec::Xorshift64::new(77);
        for _ in 0..2000 {
            let k = rng.below(48) + 1;
            match rng.below(3) {
                0 => assert_eq!(b.insert(&mut c, k, k), model.insert(k)),
                1 => assert_eq!(b.delete(&mut c, k), model.remove(&k)),
                _ => assert_eq!(b.contains(&mut c, k), model.contains(&k)),
            }
        }
        assert!(!model.is_empty());
    }

    /// Concurrent stress: final abstract set must equal a set reachable
    /// from the recorded operation results.
    #[test]
    fn concurrent_updates_preserve_bst_shape() {
        let cfg = ExecConfig::new(4).policy(SchedPolicy::Random(19));
        let mut handle = None;
        let trace = run(
            &cfg,
            |s| {
                let b = Bst::new(s);
                b.populate(s, &[10, 20, 30, 40]);
                s.set_root("bst_r", b.r);
                handle = Some(b);
            },
            (0..4u64)
                .map(|t| {
                    Box::new(move |c: &mut GateCtx| {
                        // Recompute the sentinel addresses: setup's arena
                        // is deterministic (first two allocations after
                        // three leaves are S then R).
                        let base = lrp_exec::ctx::HEAP_BASE + 4 * lrp_exec::ctx::ARENA_BYTES;
                        let s_addr = base + (3 * NODE_WORDS as u64) * 8;
                        let r_addr = s_addr + NODE_WORDS as u64 * 8;
                        let b = Bst {
                            r: r_addr,
                            s: s_addr,
                        };
                        let mut rng = lrp_exec::Xorshift64::new(t + 1);
                        for _ in 0..30 {
                            let k = rng.below(50) + 1;
                            if rng.below(2) == 0 {
                                b.insert(c, k, k);
                            } else {
                                b.delete(c, k);
                            }
                        }
                    }) as ThreadBody
                })
                .collect(),
        );
        trace.validate().unwrap();
        // Structural check on the final memory: external BST invariants.
        let m = trace.final_mem();
        let read = |a: Addr| m.get(&a).copied().unwrap_or(lrp_model::Trace::POISON);
        let r_addr = trace.roots[0].1;
        fn walk(
            read: &dyn Fn(Addr) -> u64,
            node: Addr,
            lo: u64,
            hi: u64,
            out: &mut Vec<u64>,
            depth: usize,
        ) {
            assert!(depth < 64, "tree too deep (cycle?)");
            let key = read(node + KEY);
            assert!(key >= lo && key <= hi, "key {key} out of [{lo},{hi}]");
            let l = addr(read(node + LEFT));
            let r = addr(read(node + RIGHT));
            if l == 0 && r == 0 {
                out.push(key);
                return;
            }
            assert!(l != 0 && r != 0, "internal node must have two children");
            // External-BST bounds are inclusive at the routing key: the
            // max-key construction can place an internal (or sentinel
            // leaf) with key equal to its ancestor's key in the left
            // subtree.
            walk(read, l, lo, key, out, depth + 1);
            walk(read, r, key, hi, out, depth + 1);
        }
        let mut leaves = Vec::new();
        walk(&read, r_addr, 0, u64::MAX, &mut leaves, 0);
        assert!(leaves.windows(2).all(|w| w[0] <= w[1]), "leaves in order");
        let real: Vec<u64> = leaves.into_iter().filter(|&k| k < INF1).collect();
        assert!(
            real.windows(2).all(|w| w[0] < w[1]),
            "leaf keys sorted/unique"
        );
    }
}
