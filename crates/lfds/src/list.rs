//! Harris/Michael sorted lock-free linked list \[16\] — the paper's
//! `linkedlist` workload, and the motivating example of its Figure 1.
//!
//! Node layout (3 words): `[key, value, next]`, where `next` carries the
//! Harris mark bit (logical deletion). The list is addressed through a
//! *location word* (the address of a pointer cell), so the same search
//! routine powers both the standalone list (one head word) and every
//! bucket of the Michael hash map.
//!
//! Insertion prepares the node with plain writes and publishes it with a
//! single acquire-release CAS on the predecessor pointer — the exact
//! pattern whose persistency the paper analyses: the node's fields must
//! persist before the linking CAS does.

use crate::ptr::{addr, marked, with_mark};
use lrp_exec::PmemCtx;
use lrp_model::Addr;

/// Byte offset of the key word.
pub const KEY: Addr = 0;
/// Byte offset of the value word.
pub const VAL: Addr = 8;
/// Byte offset of the next-pointer word.
pub const NEXT: Addr = 16;
/// Words per node.
pub const NODE_WORDS: usize = 3;

/// Outcome of a search: the location holding the pointer to `curr`, and
/// `curr` itself (0 if the search fell off the end).
struct Found {
    prev_loc: Addr,
    curr: Addr,
}

/// Searches the list rooted at the pointer word `head_loc` for the first
/// node with key `>= key`, unlinking marked nodes along the way
/// (Michael's helping variant of Harris's algorithm).
fn search<C: PmemCtx>(ctx: &mut C, head_loc: Addr, key: u64) -> Found {
    'retry: loop {
        let mut prev_loc = head_loc;
        let mut curr = addr(ctx.read_acq(prev_loc));
        loop {
            if curr == 0 {
                return Found { prev_loc, curr: 0 };
            }
            let succ_raw = ctx.read_acq(curr + NEXT);
            if marked(succ_raw) {
                // Help unlink the logically deleted node.
                let (ok, _) = ctx.cas_rel(prev_loc, curr, addr(succ_raw));
                if !ok {
                    continue 'retry;
                }
                curr = addr(succ_raw);
                continue;
            }
            let ckey = ctx.read(curr + KEY);
            if ckey >= key {
                return Found { prev_loc, curr };
            }
            prev_loc = curr + NEXT;
            curr = addr(succ_raw);
        }
    }
}

/// Inserts `(key, value)` into the list at `head_loc`; returns false if
/// the key is already present.
pub fn insert<C: PmemCtx>(ctx: &mut C, head_loc: Addr, key: u64, value: u64) -> bool {
    loop {
        let f = search(ctx, head_loc, key);
        if f.curr != 0 && ctx.read(f.curr + KEY) == key {
            return false;
        }
        // Prepare the node privately (W1 of Figure 1)...
        let node = ctx.alloc(NODE_WORDS);
        ctx.write(node + KEY, key);
        ctx.write(node + VAL, value);
        ctx.write(node + NEXT, f.curr);
        // ...and publish it with one CAS (the release of Figure 1).
        if ctx.cas_rel(f.prev_loc, f.curr, node).0 {
            return true;
        }
    }
}

/// Deletes `key` from the list at `head_loc`; returns false if absent.
pub fn delete<C: PmemCtx>(ctx: &mut C, head_loc: Addr, key: u64) -> bool {
    loop {
        let f = search(ctx, head_loc, key);
        if f.curr == 0 || ctx.read(f.curr + KEY) != key {
            return false;
        }
        let succ_raw = ctx.read_acq(f.curr + NEXT);
        if marked(succ_raw) {
            // Another deleter won; the next search will help unlink.
            continue;
        }
        // Logical deletion: mark the next pointer.
        if !ctx.cas_rel(f.curr + NEXT, succ_raw, with_mark(succ_raw)).0 {
            continue;
        }
        // Best-effort physical unlink.
        let _ = ctx.cas_rel(f.prev_loc, f.curr, addr(succ_raw));
        return true;
    }
}

/// Membership test (wait-free traversal, no helping).
pub fn contains<C: PmemCtx>(ctx: &mut C, head_loc: Addr, key: u64) -> bool {
    let mut curr = addr(ctx.read_acq(head_loc));
    while curr != 0 {
        let ckey = ctx.read(curr + KEY);
        let succ_raw = ctx.read_acq(curr + NEXT);
        if ckey >= key {
            return ckey == key && !marked(succ_raw);
        }
        curr = addr(succ_raw);
    }
    false
}

/// Directly builds a sorted chain of nodes for `keys` (ascending) at
/// `head_loc`. Pre-population shortcut for setup phases (§6.1 collects
/// statistics only after the structure reaches its initial size).
pub fn populate<C: PmemCtx>(ctx: &mut C, head_loc: Addr, keys: &[u64]) {
    debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
    let mut next = 0u64;
    for &key in keys.iter().rev() {
        let node = ctx.alloc(NODE_WORDS);
        ctx.write(node + KEY, key);
        ctx.write(node + VAL, key);
        ctx.write(node + NEXT, next);
        next = node;
    }
    ctx.write(head_loc, next);
}

/// The standalone sorted set: a single head pointer word.
#[derive(Debug, Clone, Copy)]
pub struct LinkedList {
    /// Address of the head pointer word.
    pub head_loc: Addr,
}

impl LinkedList {
    /// Allocates the head word (initially empty list).
    pub fn new<C: PmemCtx>(ctx: &mut C) -> Self {
        let head_loc = ctx.alloc(1);
        ctx.write(head_loc, 0);
        LinkedList { head_loc }
    }

    /// Inserts `(key, value)`; false if present.
    pub fn insert<C: PmemCtx>(&self, ctx: &mut C, key: u64, value: u64) -> bool {
        insert(ctx, self.head_loc, key, value)
    }

    /// Deletes `key`; false if absent.
    pub fn delete<C: PmemCtx>(&self, ctx: &mut C, key: u64) -> bool {
        delete(ctx, self.head_loc, key)
    }

    /// Membership test.
    pub fn contains<C: PmemCtx>(&self, ctx: &mut C, key: u64) -> bool {
        contains(ctx, self.head_loc, key)
    }

    /// Pre-populates with sorted `keys`.
    pub fn populate<C: PmemCtx>(&self, ctx: &mut C, keys: &[u64]) {
        populate(ctx, self.head_loc, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_exec::{run, DirectCtx, ExecConfig, GateCtx, SchedPolicy, ThreadBody};

    fn fresh() -> (DirectCtx, LinkedList) {
        let mut c = DirectCtx::new(1, 7);
        let l = LinkedList::new(&mut c);
        (c, l)
    }

    #[test]
    fn insert_then_contains() {
        let (mut c, l) = fresh();
        assert!(l.insert(&mut c, 5, 50));
        assert!(l.insert(&mut c, 3, 30));
        assert!(l.insert(&mut c, 9, 90));
        assert!(l.contains(&mut c, 5));
        assert!(l.contains(&mut c, 3));
        assert!(l.contains(&mut c, 9));
        assert!(!l.contains(&mut c, 4));
    }

    #[test]
    fn duplicate_insert_fails() {
        let (mut c, l) = fresh();
        assert!(l.insert(&mut c, 5, 50));
        assert!(!l.insert(&mut c, 5, 51));
    }

    #[test]
    fn delete_removes() {
        let (mut c, l) = fresh();
        for k in [2, 4, 6] {
            l.insert(&mut c, k, k);
        }
        assert!(l.delete(&mut c, 4));
        assert!(!l.contains(&mut c, 4));
        assert!(l.contains(&mut c, 2));
        assert!(l.contains(&mut c, 6));
        assert!(!l.delete(&mut c, 4));
        assert!(l.insert(&mut c, 4, 44), "reinsert after delete");
    }

    #[test]
    fn delete_absent_fails() {
        let (mut c, l) = fresh();
        assert!(!l.delete(&mut c, 1));
        l.insert(&mut c, 2, 2);
        assert!(!l.delete(&mut c, 1));
        assert!(!l.delete(&mut c, 3));
    }

    #[test]
    fn populate_matches_inserts() {
        let (mut c, l) = fresh();
        l.populate(&mut c, &[1, 5, 9]);
        assert!(l.contains(&mut c, 1));
        assert!(l.contains(&mut c, 5));
        assert!(l.contains(&mut c, 9));
        assert!(!l.contains(&mut c, 7));
        assert!(!l.insert(&mut c, 5, 55));
        assert!(l.insert(&mut c, 7, 77));
        assert!(l.delete(&mut c, 1));
        assert!(!l.contains(&mut c, 1));
    }

    #[test]
    fn sequential_model_check_against_btreeset() {
        let (mut c, l) = fresh();
        let mut model = std::collections::BTreeSet::new();
        let mut rng = lrp_exec::Xorshift64::new(42);
        for _ in 0..500 {
            let k = rng.below(32) + 1;
            match rng.below(3) {
                0 => assert_eq!(l.insert(&mut c, k, k), model.insert(k)),
                1 => assert_eq!(l.delete(&mut c, k), model.remove(&k)),
                _ => assert_eq!(l.contains(&mut c, k), model.contains(&k)),
            }
        }
    }

    /// Concurrent smoke test: distinct key spaces per thread, then check
    /// every expected key survived.
    #[test]
    fn concurrent_disjoint_inserts() {
        let cfg = ExecConfig::new(4).policy(SchedPolicy::Random(11));
        let mut list = None;
        let trace = run(
            &cfg,
            |s| {
                let l = LinkedList::new(s);
                s.set_root("head", l.head_loc);
                list = Some(l);
            },
            (0..4u64)
                .map(|t| {
                    Box::new(move |c: &mut GateCtx| {
                        let head = 0x1000_0000 + 4 * lrp_exec::ctx::ARENA_BYTES;
                        for i in 0..8 {
                            insert(c, head, t * 100 + i, i);
                        }
                    }) as ThreadBody
                })
                .collect(),
        );
        trace.validate().unwrap();
        // Rebuild the final memory and check all 32 keys present.
        let m = trace.final_mem();
        let read = |a: Addr| m.get(&a).copied().unwrap_or(lrp_model::Trace::POISON);
        let head_loc = trace.roots[0].1;
        let mut keys = Vec::new();
        let mut cur = addr(read(head_loc));
        while cur != 0 {
            let raw = read(cur + NEXT);
            if !marked(raw) {
                keys.push(read(cur + KEY));
            }
            cur = addr(raw);
        }
        assert_eq!(keys.len(), 32);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    /// Concurrent contended inserts/deletes on a small key space; verify
    /// final structure is a sorted, duplicate-free list.
    #[test]
    fn concurrent_contended_updates_stay_sorted() {
        let cfg = ExecConfig::new(4).policy(SchedPolicy::Random(13));
        let trace = run(
            &cfg,
            |s| {
                let l = LinkedList::new(s);
                l.populate(s, &[2, 4, 6, 8]);
                s.set_root("head", l.head_loc);
            },
            (0..4u64)
                .map(|t| {
                    Box::new(move |c: &mut GateCtx| {
                        let head = 0x1000_0000 + 4 * lrp_exec::ctx::ARENA_BYTES;
                        let mut rng = lrp_exec::Xorshift64::new(t + 100);
                        for _ in 0..25 {
                            let k = rng.below(10) + 1;
                            if rng.below(2) == 0 {
                                insert(c, head, k, k);
                            } else {
                                delete(c, head, k);
                            }
                        }
                    }) as ThreadBody
                })
                .collect(),
        );
        trace.validate().unwrap();
        let m = trace.final_mem();
        let read = |a: Addr| m.get(&a).copied().unwrap_or(lrp_model::Trace::POISON);
        let head_loc = trace.roots[0].1;
        let mut cur = addr(read(head_loc));
        let mut prev_key = 0;
        let mut steps = 0;
        while cur != 0 {
            let k = read(cur + KEY);
            let raw = read(cur + NEXT);
            if !marked(raw) {
                assert!(k > prev_key, "sorted and duplicate-free");
                prev_key = k;
            }
            cur = addr(raw);
            steps += 1;
            assert!(steps < 1000, "cycle detected");
        }
    }
}
