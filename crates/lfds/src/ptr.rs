//! Tagged-pointer helpers.
//!
//! All heap words are 8-byte aligned, so the low three bits of a pointer
//! word are free. The list and skip list use bit 0 as the Harris *mark*
//! (logical deletion); the Natarajan–Mittal BST uses bit 0 as *flag* and
//! bit 1 as *tag* on child edges.

use lrp_model::Addr;

/// Harris mark / NM flag bit.
pub const MARK: u64 = 1;
/// NM tag bit.
pub const TAG: u64 = 2;
/// All tag bits.
pub const BITS: u64 = 7;

/// The pointer with all tag bits cleared.
#[inline]
pub fn addr(p: u64) -> Addr {
    p & !BITS
}

/// True if the mark/flag bit is set.
#[inline]
pub fn marked(p: u64) -> bool {
    p & MARK != 0
}

/// True if the tag bit is set.
#[inline]
pub fn tagged(p: u64) -> bool {
    p & TAG != 0
}

/// Sets the mark/flag bit.
#[inline]
pub fn with_mark(p: u64) -> u64 {
    p | MARK
}

/// Sets the tag bit.
#[inline]
pub fn with_tag(p: u64) -> u64 {
    p | TAG
}

/// Packs an address with explicit flag and tag bits.
#[inline]
pub fn pack(a: Addr, flag: bool, tag: bool) -> u64 {
    debug_assert_eq!(a & BITS, 0, "unaligned pointer {a:#x}");
    a | u64::from(flag) | (u64::from(tag) << 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_tags() {
        let p = pack(0x1000, true, false);
        assert!(marked(p));
        assert!(!tagged(p));
        assert_eq!(addr(p), 0x1000);
        let q = pack(0x1000, false, true);
        assert!(!marked(q));
        assert!(tagged(q));
        assert_eq!(addr(with_mark(with_tag(0x2000))), 0x2000);
    }

    #[test]
    fn null_is_unmarked() {
        assert!(!marked(0));
        assert_eq!(addr(0), 0);
    }
}
