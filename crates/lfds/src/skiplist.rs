//! Lock-free skip list (Fraser / Herlihy–Shavit style) — the paper's
//! `skiplist` workload \[44\].
//!
//! Node layout: `[key, value, toplevel, next_0, …, next_{toplevel-1}]`.
//! Every `next` word carries the Harris mark bit. The level-0 list is the
//! ground truth (linearization happens there); upper levels are a search
//! accelerator, so a crash that loses partially-built towers is harmless —
//! which is why the recovery validator only requires level-0 integrity
//! plus no dangling upper-level pointers.

use crate::ptr::{addr, marked, with_mark};
use lrp_exec::PmemCtx;
use lrp_model::Addr;

/// Byte offset of the key word.
pub const KEY: Addr = 0;
/// Byte offset of the value word.
pub const VAL: Addr = 8;
/// Byte offset of the tower-height word.
pub const TOP: Addr = 16;
/// Byte offset of the first next-pointer word.
pub const NEXT0: Addr = 24;
/// Maximum tower height.
pub const MAX_LEVEL: usize = 16;

/// Byte offset of the level-`l` next pointer.
#[inline]
pub fn next_off(level: usize) -> Addr {
    NEXT0 + 8 * level as Addr
}

/// Lock-free skip list handle. The head node is a full-height sentinel
/// with key 0 (real keys must be `>= 1`).
#[derive(Debug, Clone, Copy)]
pub struct SkipList {
    /// Address of the head sentinel node.
    pub head: Addr,
}

/// Draws a tower height with geometric(1/2) distribution, capped.
fn random_level<C: PmemCtx>(ctx: &mut C) -> usize {
    let mut lvl = 1;
    while lvl < MAX_LEVEL && ctx.rand() & 1 == 1 {
        lvl += 1;
    }
    lvl
}

impl SkipList {
    /// Allocates the head sentinel (empty list).
    pub fn new<C: PmemCtx>(ctx: &mut C) -> Self {
        let head = ctx.alloc(3 + MAX_LEVEL);
        ctx.write(head + KEY, 0);
        ctx.write(head + VAL, 0);
        ctx.write(head + TOP, MAX_LEVEL as u64);
        for l in 0..MAX_LEVEL {
            ctx.write(head + next_off(l), 0);
        }
        SkipList { head }
    }

    /// Finds the insertion window for `key` at every level, helping
    /// unlink marked nodes. Returns true if an unmarked node with `key`
    /// sits at level 0.
    fn find<C: PmemCtx>(
        &self,
        ctx: &mut C,
        key: u64,
        preds: &mut [Addr; MAX_LEVEL],
        succs: &mut [Addr; MAX_LEVEL],
    ) -> bool {
        'retry: loop {
            let mut pred = self.head;
            for lvl in (0..MAX_LEVEL).rev() {
                let mut curr = addr(ctx.read_acq(pred + next_off(lvl)));
                loop {
                    if curr == 0 {
                        break;
                    }
                    let mut succ_raw = ctx.read_acq(curr + next_off(lvl));
                    while marked(succ_raw) {
                        // Help unlink at this level.
                        if !ctx.cas_rel(pred + next_off(lvl), curr, addr(succ_raw)).0 {
                            continue 'retry;
                        }
                        curr = addr(succ_raw);
                        if curr == 0 {
                            break;
                        }
                        succ_raw = ctx.read_acq(curr + next_off(lvl));
                    }
                    if curr == 0 {
                        break;
                    }
                    if ctx.read(curr + KEY) < key {
                        pred = curr;
                        curr = addr(succ_raw);
                    } else {
                        break;
                    }
                }
                preds[lvl] = pred;
                succs[lvl] = curr;
            }
            let c = succs[0];
            return c != 0 && ctx.read(c + KEY) == key;
        }
    }

    /// Inserts `(key, value)`; false if present. `key` must be `>= 1`.
    pub fn insert<C: PmemCtx>(&self, ctx: &mut C, key: u64, value: u64) -> bool {
        debug_assert!(key >= 1);
        let top = random_level(ctx);
        let mut preds = [0; MAX_LEVEL];
        let mut succs = [0; MAX_LEVEL];
        loop {
            if self.find(ctx, key, &mut preds, &mut succs) {
                return false;
            }
            // Build the tower privately.
            let node = ctx.alloc(3 + top);
            ctx.write(node + KEY, key);
            ctx.write(node + VAL, value);
            ctx.write(node + TOP, top as u64);
            for (l, &succ) in succs.iter().enumerate().take(top) {
                ctx.write(node + next_off(l), succ);
            }
            // Linearize: link at level 0.
            if !ctx.cas_rel(preds[0] + next_off(0), succs[0], node).0 {
                continue;
            }
            // Link the upper levels (best effort; abandoning on a
            // concurrent delete of this very node).
            for lvl in 1..top {
                loop {
                    if ctx.cas_rel(preds[lvl] + next_off(lvl), succs[lvl], node).0 {
                        break;
                    }
                    self.find(ctx, key, &mut preds, &mut succs);
                    if succs[0] != node {
                        // The node was deleted while we were linking.
                        return true;
                    }
                    // Repoint our tower level at the new successor.
                    let old = ctx.read_acq(node + next_off(lvl));
                    if marked(old) {
                        return true;
                    }
                    if old != succs[lvl] && !ctx.cas_rel(node + next_off(lvl), old, succs[lvl]).0 {
                        return true;
                    }
                }
            }
            return true;
        }
    }

    /// Deletes `key`; false if absent.
    pub fn delete<C: PmemCtx>(&self, ctx: &mut C, key: u64) -> bool {
        let mut preds = [0; MAX_LEVEL];
        let mut succs = [0; MAX_LEVEL];
        if !self.find(ctx, key, &mut preds, &mut succs) {
            return false;
        }
        let victim = succs[0];
        let top = ctx.read(victim + TOP) as usize;
        // Mark the upper levels top-down.
        for lvl in (1..top).rev() {
            loop {
                let raw = ctx.read_acq(victim + next_off(lvl));
                if marked(raw) {
                    break;
                }
                if ctx.cas_rel(victim + next_off(lvl), raw, with_mark(raw)).0 {
                    break;
                }
            }
        }
        // Marking level 0 is the linearization point.
        loop {
            let raw = ctx.read_acq(victim + next_off(0));
            if marked(raw) {
                return false; // another deleter linearized first
            }
            if ctx.cas_rel(victim + next_off(0), raw, with_mark(raw)).0 {
                // Physically unlink via a helping find.
                self.find(ctx, key, &mut preds, &mut succs);
                return true;
            }
        }
    }

    /// Membership test (no helping writes).
    pub fn contains<C: PmemCtx>(&self, ctx: &mut C, key: u64) -> bool {
        let mut pred = self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            let mut curr = addr(ctx.read_acq(pred + next_off(lvl)));
            while curr != 0 {
                let k = ctx.read(curr + KEY);
                let raw = ctx.read_acq(curr + next_off(lvl));
                if k < key {
                    pred = curr;
                    curr = addr(raw);
                } else {
                    if lvl == 0 {
                        return k == key && !marked(raw);
                    }
                    break;
                }
            }
        }
        false
    }

    /// Pre-populates with sorted `keys`, drawing tower heights from the
    /// context RNG (same distribution as live inserts).
    pub fn populate<C: PmemCtx>(&self, ctx: &mut C, keys: &[u64]) {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
        let mut tails: [Addr; MAX_LEVEL] = [self.head; MAX_LEVEL];
        for &key in keys {
            let top = random_level(ctx);
            let node = ctx.alloc(3 + top);
            ctx.write(node + KEY, key);
            ctx.write(node + VAL, key);
            ctx.write(node + TOP, top as u64);
            for (l, tail) in tails.iter_mut().enumerate().take(top) {
                ctx.write(node + next_off(l), 0);
                ctx.write(*tail + next_off(l), node);
                *tail = node;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_exec::DirectCtx;

    fn fresh() -> (DirectCtx, SkipList) {
        let mut c = DirectCtx::new(1, 7);
        let s = SkipList::new(&mut c);
        (c, s)
    }

    #[test]
    fn insert_contains_delete() {
        let (mut c, s) = fresh();
        for k in [5, 1, 9, 3, 7] {
            assert!(s.insert(&mut c, k, k * 2));
        }
        for k in [1, 3, 5, 7, 9] {
            assert!(s.contains(&mut c, k));
        }
        assert!(!s.contains(&mut c, 4));
        assert!(!s.insert(&mut c, 5, 0));
        assert!(s.delete(&mut c, 5));
        assert!(!s.contains(&mut c, 5));
        assert!(!s.delete(&mut c, 5));
        assert!(s.insert(&mut c, 5, 1));
    }

    #[test]
    fn towers_have_varied_heights() {
        let (mut c, s) = fresh();
        for k in 1..=200 {
            s.insert(&mut c, k, k);
        }
        // With 200 geometric draws, some tower should exceed level 3.
        let mut tall = false;
        let curr = addr(c.read(s.head + next_off(3)));
        if curr != 0 {
            tall = true;
        }
        let _ = curr;
        assert!(tall, "upper levels should be populated");
        for k in 1..=200 {
            assert!(s.contains(&mut c, k));
        }
    }

    #[test]
    fn populate_matches_inserts() {
        let (mut c, s) = fresh();
        let keys: Vec<u64> = (1..=100).collect();
        s.populate(&mut c, &keys);
        for k in 1..=100 {
            assert!(s.contains(&mut c, k), "missing {k}");
            assert!(!s.insert(&mut c, k, 0));
        }
        assert!(s.delete(&mut c, 50));
        assert!(!s.contains(&mut c, 50));
        assert!(s.insert(&mut c, 101, 1));
        assert!(s.contains(&mut c, 101));
    }

    #[test]
    fn sequential_model_check() {
        let (mut c, s) = fresh();
        let mut model = std::collections::BTreeSet::new();
        let mut rng = lrp_exec::Xorshift64::new(31);
        for _ in 0..2000 {
            let k = rng.below(48) + 1;
            match rng.below(3) {
                0 => assert_eq!(s.insert(&mut c, k, k), model.insert(k), "insert {k}"),
                1 => assert_eq!(s.delete(&mut c, k), model.remove(&k), "delete {k}"),
                _ => assert_eq!(s.contains(&mut c, k), model.contains(&k), "contains {k}"),
            }
        }
    }
}
