//! SynchroBench-style workload generation (§6.1 of the paper).
//!
//! For each workload: a harness creates 1–32 workers issuing inserts and
//! deletes at a 1:1 ratio (100% update rate), over a key range of twice
//! the initial size so the structure stays at its steady-state size. The
//! structure is pre-populated before statistics (events) are collected.

use crate::{bst::Bst, hashmap::HashMap, list::LinkedList, queue::Queue, skiplist::SkipList};
use lrp_exec::{run, ExecConfig, PmemCtx, SchedPolicy, ThreadBody, Xorshift64};
use lrp_model::{OpKind, ThreadId, Trace};
use std::sync::{Arc, OnceLock};

/// The five LFD workloads of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// Harris/Michael sorted linked list.
    LinkedList,
    /// Michael hash map.
    HashMap,
    /// Natarajan–Mittal external BST.
    Bst,
    /// Lock-free skip list.
    SkipList,
    /// Michael–Scott queue.
    Queue,
}

impl Structure {
    /// All five workloads, in the paper's figure order.
    pub const ALL: [Structure; 5] = [
        Structure::LinkedList,
        Structure::HashMap,
        Structure::Bst,
        Structure::SkipList,
        Structure::Queue,
    ];

    /// The paper's workload name.
    pub fn name(self) -> &'static str {
        match self {
            Structure::LinkedList => "linkedlist",
            Structure::HashMap => "hashmap",
            Structure::Bst => "bstree",
            Structure::SkipList => "skiplist",
            Structure::Queue => "queue",
        }
    }

    /// Parses a paper workload name back into a [`Structure`].
    pub fn from_name(name: &str) -> Option<Structure> {
        Structure::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The distinguishing root-pointer name this structure registers in
    /// its traces (see [`WorkloadSpec::build_trace`]).
    pub fn primary_root(self) -> &'static str {
        match self {
            Structure::LinkedList => "head",
            Structure::HashMap => "buckets",
            Structure::Bst => "bst_r",
            Structure::SkipList => "sl_head",
            Structure::Queue => "q_anchor",
        }
    }

    /// Identifies the structure a trace was generated from by its
    /// registered root names.
    pub fn infer_from_roots<'a>(roots: impl IntoIterator<Item = &'a str>) -> Option<Structure> {
        roots.into_iter().find_map(|name| {
            Structure::ALL
                .into_iter()
                .find(|s| s.primary_root() == name)
        })
    }
}

impl std::str::FromStr for Structure {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Structure::from_name(s).ok_or_else(|| {
            let names: Vec<&str> = Structure::ALL.iter().map(|s| s.name()).collect();
            format!(
                "unknown structure {s:?} (expected one of {})",
                names.join("|")
            )
        })
    }
}

impl std::fmt::Display for Structure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How workload (and service) key draws are distributed over the key
/// range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over `[1, key_range]` (the SynchroBench default).
    Uniform,
    /// Zipfian with exponent `theta` — rank 1 (key 1) is hottest. The
    /// classic skewed-service distribution (YCSB uses theta = 0.99).
    Zipfian {
        /// Skew exponent in `(0, 1)`; larger is more skewed.
        theta: f64,
    },
}

impl KeyDist {
    /// YCSB's default skew.
    pub const ZIPFIAN_DEFAULT_THETA: f64 = 0.99;

    /// A short stable name (`uniform` / `zipfian`).
    pub fn name(self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipfian { .. } => "zipfian",
        }
    }

    /// Builds the per-thread draw state for keys in `[1, range]`.
    pub fn sampler(self, range: u64) -> KeySampler {
        match self {
            KeyDist::Uniform => KeySampler::Uniform { range },
            KeyDist::Zipfian { theta } => KeySampler::Zipfian(Zipfian::new(range, theta)),
        }
    }
}

impl std::str::FromStr for KeyDist {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uniform" => Ok(KeyDist::Uniform),
            "zipfian" => Ok(KeyDist::Zipfian {
                theta: KeyDist::ZIPFIAN_DEFAULT_THETA,
            }),
            other => Err(format!(
                "unknown key distribution {other:?} (expected uniform|zipfian)"
            )),
        }
    }
}

/// Materialized draw state for a [`KeyDist`] over a fixed range.
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform draws.
    Uniform {
        /// Keys are drawn from `[1, range]`.
        range: u64,
    },
    /// Zipfian draws.
    Zipfian(Zipfian),
}

impl KeySampler {
    /// Draws one key in `[1, range]` using `rng`.
    pub fn draw(&self, rng: &mut Xorshift64) -> u64 {
        match self {
            KeySampler::Uniform { range } => rng.below(*range) + 1,
            KeySampler::Zipfian(z) => z.draw(rng),
        }
    }
}

/// Deterministic Zipfian rank generator over `[1, n]` (Gray et al.'s
/// constant-time-per-draw formulation, as popularized by YCSB), driven
/// by the in-tree [`Xorshift64`]. Construction is O(n) (one harmonic
/// sum); draws are O(1). Rank 1 is the most popular key, so skew is
/// directly observable (and testable) without a scramble step.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// A generator over `[1, n]` with exponent `theta` in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n >= 1, "zipfian needs a non-empty range");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipfian theta must be in (0, 1), got {theta}"
        );
        let zeta = |upto: u64| -> f64 { (1..=upto).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zetan = zeta(n);
        let zeta2 = zeta(2.min(n));
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta,
        }
    }

    /// Draws one rank in `[1, n]`.
    pub fn draw(&self, rng: &mut Xorshift64) -> u64 {
        // 53-bit mantissa uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 2;
        }
        let rank = 1 + (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n)
    }
}

#[derive(Clone, Copy)]
enum Handle {
    List(LinkedList),
    Map(HashMap),
    Bst(Bst),
    Skip(SkipList),
    Queue(Queue),
}

/// A complete workload description; [`WorkloadSpec::build_trace`] turns
/// it into an execution trace deterministically.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which data structure to drive.
    pub structure: Structure,
    /// Initial number of elements (pre-populated before recording).
    pub initial_size: usize,
    /// Keys are drawn uniformly from `[1, key_range]`; defaults to twice
    /// the initial size (SynchroBench convention).
    pub key_range: u64,
    /// Number of worker threads (the paper sweeps 1–32).
    pub threads: ThreadId,
    /// Operations per worker.
    pub ops_per_thread: usize,
    /// Master seed (drives population, scheduling, and key draws).
    pub seed: u64,
    /// Percentage of read-only (`contains`) operations; the paper's
    /// update-rate is 100%, i.e. 0 here.
    pub read_pct: u8,
    /// Bucket count for the hash map (0 = `initial_size`, load factor
    /// ~1 as in Michael's evaluation; min 4).
    pub nbuckets: u64,
    /// How worker key draws are distributed over `[1, key_range]`.
    pub key_dist: KeyDist,
}

impl WorkloadSpec {
    /// Defaults: 256 initial elements, 4 threads, 64 ops each, 100%
    /// updates.
    pub fn new(structure: Structure) -> Self {
        WorkloadSpec {
            structure,
            initial_size: 256,
            key_range: 0,
            threads: 4,
            ops_per_thread: 64,
            seed: 1,
            read_pct: 0,
            nbuckets: 0,
            key_dist: KeyDist::Uniform,
        }
    }

    /// Sets the initial size.
    pub fn initial_size(mut self, n: usize) -> Self {
        self.initial_size = n;
        self
    }

    /// Sets the key range explicitly.
    pub fn key_range(mut self, r: u64) -> Self {
        self.key_range = r;
        self
    }

    /// Sets the worker count.
    pub fn threads(mut self, t: ThreadId) -> Self {
        self.threads = t;
        self
    }

    /// Sets operations per worker.
    pub fn ops_per_thread(mut self, n: usize) -> Self {
        self.ops_per_thread = n;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the percentage of `contains` operations.
    pub fn read_pct(mut self, p: u8) -> Self {
        assert!(p <= 100);
        self.read_pct = p;
        self
    }

    /// Sets the hash-map bucket count.
    pub fn nbuckets(mut self, n: u64) -> Self {
        self.nbuckets = n;
        self
    }

    /// Sets the key distribution.
    pub fn key_dist(mut self, d: KeyDist) -> Self {
        self.key_dist = d;
        self
    }

    fn effective_key_range(&self) -> u64 {
        if self.key_range != 0 {
            self.key_range
        } else {
            (self.initial_size as u64 * 2).max(2)
        }
    }

    fn effective_nbuckets(&self) -> u64 {
        if self.nbuckets != 0 {
            self.nbuckets
        } else {
            (self.initial_size as u64).max(4)
        }
    }

    /// Draws `initial_size` distinct keys from `[1, key_range]`, sorted.
    fn initial_keys(&self) -> Vec<u64> {
        let range = self.effective_key_range();
        assert!(
            self.initial_size as u64 <= range,
            "initial size exceeds key range"
        );
        let mut rng = Xorshift64::new(self.seed.wrapping_add(0xA11C));
        let mut set = std::collections::BTreeSet::new();
        while set.len() < self.initial_size {
            set.insert(rng.below(range) + 1);
        }
        set.into_iter().collect()
    }

    /// Runs the workload under the lockstep executor and returns the
    /// trace.
    pub fn build_trace(&self) -> Trace {
        let structure = self.structure;
        let keys = self.initial_keys();
        let nbuckets = self.effective_nbuckets();
        let range = self.effective_key_range();
        let handle: Arc<OnceLock<Handle>> = Arc::new(OnceLock::new());

        let setup_handle = handle.clone();
        let setup = move |s: &mut lrp_exec::DirectCtx| {
            let h = match structure {
                Structure::LinkedList => {
                    let l = LinkedList::new(s);
                    l.populate(s, &keys);
                    s.set_root("head", l.head_loc);
                    Handle::List(l)
                }
                Structure::HashMap => {
                    let m = HashMap::new(s, nbuckets);
                    m.populate(s, &keys);
                    s.set_root("buckets", m.buckets);
                    s.set_root("nbuckets", m.nbuckets);
                    Handle::Map(m)
                }
                Structure::Bst => {
                    let b = Bst::new(s);
                    b.populate(s, &keys);
                    s.set_root("bst_r", b.r);
                    s.set_root("bst_s", b.s);
                    Handle::Bst(b)
                }
                Structure::SkipList => {
                    let sl = SkipList::new(s);
                    sl.populate(s, &keys);
                    s.set_root("sl_head", sl.head);
                    Handle::Skip(sl)
                }
                Structure::Queue => {
                    let q = Queue::new(s);
                    let values: Vec<u64> = (1..=keys.len() as u64).collect();
                    q.populate(s, &values);
                    s.set_root("q_anchor", q.anchor);
                    Handle::Queue(q)
                }
            };
            let _ = setup_handle.set(h);
        };

        let bodies: Vec<ThreadBody> = (0..self.threads)
            .map(|t| {
                let handle = handle.clone();
                let ops = self.ops_per_thread;
                let read_pct = self.read_pct;
                let seed = self.seed;
                let sampler = self.key_dist.sampler(range);
                Box::new(move |c: &mut lrp_exec::GateCtx| {
                    let h = *handle.get().expect("setup ran before workers");
                    let mut rng =
                        Xorshift64::new(seed.wrapping_mul(0x5851_F42D).wrapping_add(t as u64 + 1));
                    for i in 0..ops {
                        let key = sampler.draw(&mut rng);
                        let is_read = rng.below(100) < read_pct as u64;
                        let is_insert = rng.below(2) == 0;
                        let op = SetOp::pick(is_read, is_insert);
                        match h {
                            Handle::List(l) => {
                                drive_set(
                                    c,
                                    "linkedlist",
                                    key,
                                    op,
                                    |c, k| l.contains(c, k),
                                    |c, k| l.insert(c, k, k),
                                    |c, k| l.delete(c, k),
                                );
                            }
                            Handle::Map(m) => {
                                drive_set(
                                    c,
                                    "hashmap",
                                    key,
                                    op,
                                    |c, k| m.contains(c, k),
                                    |c, k| m.insert(c, k, k),
                                    |c, k| m.delete(c, k),
                                );
                            }
                            Handle::Bst(b) => {
                                drive_set(
                                    c,
                                    "bstree",
                                    key,
                                    op,
                                    |c, k| b.contains(c, k),
                                    |c, k| b.insert(c, k, k),
                                    |c, k| b.delete(c, k),
                                );
                            }
                            Handle::Skip(sl) => {
                                drive_set(
                                    c,
                                    "skiplist",
                                    key,
                                    op,
                                    |c, k| sl.contains(c, k),
                                    |c, k| sl.insert(c, k, k),
                                    |c, k| sl.delete(c, k),
                                );
                            }
                            Handle::Queue(q) => {
                                if is_insert {
                                    let v = (t as u64 + 1) * 1_000_000 + i as u64;
                                    c.op_begin(OpKind::Enqueue(v));
                                    c.site_op("queue/enqueue");
                                    q.enqueue(c, v);
                                    c.op_end(1);
                                } else {
                                    c.op_begin(OpKind::Dequeue);
                                    c.site_op("queue/dequeue");
                                    let r = q.dequeue(c);
                                    c.op_end(r.map(|v| v + 1).unwrap_or(0));
                                }
                            }
                        }
                    }
                }) as ThreadBody
            })
            .collect();

        let cfg = ExecConfig::new(self.threads)
            .policy(SchedPolicy::Random(self.seed.wrapping_add(0x5EED)))
            .seed(self.seed);
        run(&cfg, setup, bodies)
    }
}

/// Which set-structure operation [`drive_set`] issues.
#[derive(Clone, Copy)]
enum SetOp {
    Contains,
    Insert,
    Delete,
}

impl SetOp {
    fn pick(is_read: bool, is_insert: bool) -> SetOp {
        if is_read {
            SetOp::Contains
        } else if is_insert {
            SetOp::Insert
        } else {
            SetOp::Delete
        }
    }
}

/// Static `structure/operation` site labels, so the per-op hot loop
/// never formats a label string.
fn set_labels(structure: &str) -> [&'static str; 3] {
    match structure {
        "linkedlist" => [
            "linkedlist/contains",
            "linkedlist/insert",
            "linkedlist/delete",
        ],
        "hashmap" => ["hashmap/contains", "hashmap/insert", "hashmap/delete"],
        "bstree" => ["bstree/contains", "bstree/insert", "bstree/delete"],
        "skiplist" => ["skiplist/contains", "skiplist/insert", "skiplist/delete"],
        _ => ["set/contains", "set/insert", "set/delete"],
    }
}

/// Issues one set-structure operation with markers and an
/// `structure/operation` [`OpSite`](lrp_model::Trace::site_names) label.
fn drive_set<C: PmemCtx>(
    c: &mut C,
    structure: &str,
    key: u64,
    op: SetOp,
    contains: impl Fn(&mut C, u64) -> bool,
    insert: impl Fn(&mut C, u64) -> bool,
    delete: impl Fn(&mut C, u64) -> bool,
) {
    let labels = set_labels(structure);
    match op {
        SetOp::Contains => {
            c.op_begin(OpKind::Contains(key));
            c.site_op(labels[0]);
            let r = contains(c, key);
            c.op_end(r as u64);
        }
        SetOp::Insert => {
            c.op_begin(OpKind::Insert(key, key));
            c.site_op(labels[1]);
            let r = insert(c, key);
            c.op_end(r as u64);
        }
        SetOp::Delete => {
            c.op_begin(OpKind::Delete(key));
            c.site_op(labels[2]);
            let r = delete(c, key);
            c.op_end(r as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_structures_build_valid_traces() {
        for s in Structure::ALL {
            let spec = WorkloadSpec::new(s)
                .initial_size(32)
                .threads(2)
                .ops_per_thread(12)
                .seed(9);
            let t = spec.build_trace();
            t.validate()
                .unwrap_or_else(|e| panic!("{s}: invalid trace: {e}"));
            assert!(!t.events.is_empty(), "{s}: empty trace");
            assert_eq!(t.markers.len(), 2 * 12, "{s}: marker count");
            assert!(!t.initial_mem.is_empty(), "{s}: missing initial image");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let spec = WorkloadSpec::new(Structure::HashMap)
            .initial_size(32)
            .threads(3)
            .ops_per_thread(10)
            .seed(4);
        let a = spec.build_trace();
        let b = spec.build_trace();
        assert_eq!(a.events, b.events);
        assert_eq!(a.initial_mem, b.initial_mem);
    }

    #[test]
    fn different_seeds_differ() {
        let base = WorkloadSpec::new(Structure::SkipList)
            .initial_size(32)
            .threads(2)
            .ops_per_thread(10);
        let a = base.clone().seed(1).build_trace();
        let b = base.seed(2).build_trace();
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn update_only_traces_have_releases_and_acquires() {
        let spec = WorkloadSpec::new(Structure::LinkedList)
            .initial_size(16)
            .threads(2)
            .ops_per_thread(10);
        let t = spec.build_trace();
        assert!(t.events.iter().any(|e| e.is_release()));
        assert!(t.events.iter().any(|e| e.is_acquire()));
    }

    #[test]
    fn read_pct_produces_contains_markers() {
        let spec = WorkloadSpec::new(Structure::Bst)
            .initial_size(16)
            .threads(1)
            .ops_per_thread(50)
            .read_pct(100);
        let t = spec.build_trace();
        assert!(t
            .markers
            .iter()
            .all(|m| matches!(m.op, OpKind::Contains(_))));
    }

    #[test]
    fn names_round_trip_and_roots_identify_structures() {
        for s in Structure::ALL {
            assert_eq!(Structure::from_name(s.name()), Some(s));
            assert_eq!(s.name().parse::<Structure>(), Ok(s));
            let t = WorkloadSpec::new(s)
                .initial_size(8)
                .threads(1)
                .ops_per_thread(2)
                .build_trace();
            let inferred = Structure::infer_from_roots(t.roots.iter().map(|(n, _)| n.as_str()));
            assert_eq!(inferred, Some(s), "{s}");
        }
        assert!("btree".parse::<Structure>().is_err());
        assert_eq!(Structure::infer_from_roots(["nbuckets"]), None);
    }

    #[test]
    fn zipfian_draws_are_deterministic() {
        let z = Zipfian::new(1000, 0.99);
        let mut a = Xorshift64::new(7);
        let mut b = Xorshift64::new(7);
        let seq_a: Vec<u64> = (0..64).map(|_| z.draw(&mut a)).collect();
        let seq_b: Vec<u64> = (0..64).map(|_| z.draw(&mut b)).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = Xorshift64::new(8);
        let seq_c: Vec<u64> = (0..64).map(|_| z.draw(&mut c)).collect();
        assert_ne!(seq_a, seq_c, "different seeds draw different keys");
    }

    #[test]
    fn zipfian_skew_has_the_right_shape() {
        let n = 100u64;
        let draws = 100_000usize;
        let z = Zipfian::new(n, 0.99);
        let mut rng = Xorshift64::new(42);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            let k = z.draw(&mut rng);
            assert!((1..=n).contains(&k));
            counts[k as usize] += 1;
        }
        // Rank 1's analytic share at theta=0.99, n=100 is ~19%; allow slack.
        let share1 = counts[1] as f64 / draws as f64;
        assert!(share1 > 0.12, "rank 1 share {share1} too flat for zipfian");
        // Broad monotonicity: the head decile dominates the tail decile.
        let head: u64 = counts[1..=10].iter().sum();
        let tail: u64 = counts[91..=100].iter().sum();
        assert!(
            head > 10 * tail.max(1),
            "head {head} should dwarf tail {tail}"
        );
        // Uniform stays flat by comparison.
        let u = KeyDist::Uniform.sampler(n);
        let mut rng = Xorshift64::new(42);
        let mut ucounts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            ucounts[u.draw(&mut rng) as usize] += 1;
        }
        let (umin, umax) = (1..=n as usize).fold((u64::MAX, 0), |(lo, hi), k| {
            (lo.min(ucounts[k]), hi.max(ucounts[k]))
        });
        assert!(
            (umax as f64) < 2.0 * umin as f64,
            "uniform draws unexpectedly skewed: min {umin} max {umax}"
        );
    }

    #[test]
    fn zipfian_traces_hit_hot_keys_and_stay_deterministic() {
        let base = WorkloadSpec::new(Structure::HashMap)
            .initial_size(32)
            .threads(2)
            .ops_per_thread(40)
            .seed(11);
        let zipf = base.clone().key_dist(KeyDist::Zipfian { theta: 0.99 });
        let a = zipf.build_trace();
        let b = zipf.build_trace();
        assert_eq!(a.events, b.events, "zipfian traces are deterministic");
        a.validate().unwrap();
        // The zipfian trace must differ from the uniform one and
        // concentrate its operations on low keys.
        let uni = base.build_trace();
        assert_ne!(a.events, uni.events);
        let low_keys = |t: &Trace| {
            t.markers
                .iter()
                .filter_map(|m| match m.op {
                    OpKind::Insert(k, _) | OpKind::Delete(k) | OpKind::Contains(k) => Some(k),
                    _ => None,
                })
                .filter(|&k| k <= 8)
                .count()
        };
        assert!(
            low_keys(&a) > 2 * low_keys(&uni).max(1),
            "zipfian ops should concentrate on the hot head"
        );
    }

    #[test]
    fn key_dist_parses_and_names_round_trip() {
        assert_eq!("uniform".parse::<KeyDist>(), Ok(KeyDist::Uniform));
        assert_eq!(
            "zipfian".parse::<KeyDist>(),
            Ok(KeyDist::Zipfian {
                theta: KeyDist::ZIPFIAN_DEFAULT_THETA
            })
        );
        assert!("zipf".parse::<KeyDist>().is_err());
        assert_eq!(KeyDist::Uniform.name(), "uniform");
        assert_eq!(KeyDist::Zipfian { theta: 0.5 }.name(), "zipfian");
    }

    #[test]
    fn key_range_defaults_to_double_size() {
        let spec = WorkloadSpec::new(Structure::LinkedList).initial_size(100);
        assert_eq!(spec.effective_key_range(), 200);
        let spec = spec.key_range(500);
        assert_eq!(spec.effective_key_range(), 500);
    }

    #[test]
    fn initial_keys_are_distinct_and_in_range() {
        let spec = WorkloadSpec::new(Structure::HashMap).initial_size(64);
        let keys = spec.initial_keys();
        assert_eq!(keys.len(), 64);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().all(|&k| (1..=128).contains(&k)));
    }
}
