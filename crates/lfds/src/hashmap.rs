//! Michael lock-free hash table \[28\] — the paper's `hashmap` workload.
//!
//! A fixed array of bucket pointer words, each heading a Harris/Michael
//! lock-free list (shared implementation in [`crate::list`]). The bucket
//! count is fixed at construction, as in SynchroBench.

use crate::list;
use lrp_exec::PmemCtx;
use lrp_model::Addr;

/// Lock-free hash map handle.
#[derive(Debug, Clone, Copy)]
pub struct HashMap {
    /// Base address of the bucket pointer array.
    pub buckets: Addr,
    /// Number of buckets.
    pub nbuckets: u64,
}

impl HashMap {
    /// Allocates `nbuckets` empty buckets.
    pub fn new<C: PmemCtx>(ctx: &mut C, nbuckets: u64) -> Self {
        assert!(nbuckets > 0);
        let buckets = ctx.alloc(nbuckets as usize);
        for i in 0..nbuckets {
            ctx.write(buckets + 8 * i, 0);
        }
        HashMap { buckets, nbuckets }
    }

    /// Fibonacci-hash bucket index for `key`.
    fn bucket_loc(&self, key: u64) -> Addr {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        self.buckets + 8 * (h % self.nbuckets)
    }

    /// Inserts `(key, value)`; false if present.
    pub fn insert<C: PmemCtx>(&self, ctx: &mut C, key: u64, value: u64) -> bool {
        list::insert(ctx, self.bucket_loc(key), key, value)
    }

    /// Deletes `key`; false if absent.
    pub fn delete<C: PmemCtx>(&self, ctx: &mut C, key: u64) -> bool {
        list::delete(ctx, self.bucket_loc(key), key)
    }

    /// Membership test.
    pub fn contains<C: PmemCtx>(&self, ctx: &mut C, key: u64) -> bool {
        list::contains(ctx, self.bucket_loc(key), key)
    }

    /// Pre-populates with `keys` (need not be sorted) by building each
    /// bucket chain directly.
    pub fn populate<C: PmemCtx>(&self, ctx: &mut C, keys: &[u64]) {
        let mut per_bucket: Vec<Vec<u64>> = vec![Vec::new(); self.nbuckets as usize];
        for &k in keys {
            let loc = self.bucket_loc(k);
            per_bucket[((loc - self.buckets) / 8) as usize].push(k);
        }
        for (i, bucket) in per_bucket.iter_mut().enumerate() {
            bucket.sort_unstable();
            bucket.dedup();
            list::populate(ctx, self.buckets + 8 * i as u64, bucket);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_exec::DirectCtx;

    fn fresh(nbuckets: u64) -> (DirectCtx, HashMap) {
        let mut c = DirectCtx::new(1, 7);
        let h = HashMap::new(&mut c, nbuckets);
        (c, h)
    }

    #[test]
    fn insert_contains_delete() {
        let (mut c, h) = fresh(4);
        for k in 1..=20 {
            assert!(h.insert(&mut c, k, k * 10));
        }
        for k in 1..=20 {
            assert!(h.contains(&mut c, k));
        }
        assert!(!h.contains(&mut c, 21));
        assert!(h.delete(&mut c, 7));
        assert!(!h.contains(&mut c, 7));
        assert!(!h.delete(&mut c, 7));
    }

    #[test]
    fn duplicate_insert_rejected_across_buckets() {
        let (mut c, h) = fresh(2);
        assert!(h.insert(&mut c, 9, 1));
        assert!(!h.insert(&mut c, 9, 2));
    }

    #[test]
    fn single_bucket_degenerates_to_list() {
        let (mut c, h) = fresh(1);
        for k in [5, 1, 3] {
            h.insert(&mut c, k, k);
        }
        for k in [1, 3, 5] {
            assert!(h.contains(&mut c, k));
        }
    }

    #[test]
    fn populate_matches_inserts() {
        let (mut c, h) = fresh(8);
        let keys: Vec<u64> = (1..=50).collect();
        h.populate(&mut c, &keys);
        for k in 1..=50 {
            assert!(h.contains(&mut c, k), "missing {k}");
            assert!(!h.insert(&mut c, k, 0));
        }
        assert!(h.delete(&mut c, 25));
        assert!(!h.contains(&mut c, 25));
    }

    #[test]
    fn sequential_model_check() {
        let (mut c, h) = fresh(8);
        let mut model = std::collections::BTreeSet::new();
        let mut rng = lrp_exec::Xorshift64::new(23);
        for _ in 0..1000 {
            let k = rng.below(64) + 1;
            match rng.below(3) {
                0 => assert_eq!(h.insert(&mut c, k, k), model.insert(k)),
                1 => assert_eq!(h.delete(&mut c, k), model.remove(&k)),
                _ => assert_eq!(h.contains(&mut c, k), model.contains(&k)),
            }
        }
    }
}
