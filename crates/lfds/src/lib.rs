//! The five log-free data structures (LFDs) evaluated by the paper
//! (§6.1), written against the [`lrp_exec::PmemCtx`] access trait so the
//! same code runs under the functional executor (to generate traces), the
//! immediate context (for fast sequential tests), and — via trace replay —
//! the timing simulator.
//!
//! * [`list::LinkedList`] — Harris/Michael sorted lock-free linked list,
//! * [`hashmap::HashMap`] — Michael lock-free hash table (one lock-free
//!   list per bucket),
//! * [`bst::Bst`] — Natarajan–Mittal lock-free external binary search
//!   tree,
//! * [`skiplist::SkipList`] — lock-free skip list,
//! * [`queue::Queue`] — Michael–Scott lock-free queue.
//!
//! Synchronization operations carry release/acquire annotations exactly
//! as the paper requires ("all workloads are data-race-free in that
//! synchronization operations are properly labelled"): publishing CASes
//! are acquire-release, shared pointer loads are acquires, and
//! initialization of private nodes is plain.
//!
//! [`harness`] generates SynchroBench-style workloads (1:1 insert:delete,
//! 100% updates by default) and [`validate`] checks structural integrity
//! of a memory image — the null-recovery check used after simulated
//! crashes.

pub mod bst;
pub mod harness;
pub mod hashmap;
pub mod list;
pub mod ptr;
pub mod queue;
pub mod skiplist;
pub mod validate;

pub use harness::{KeyDist, KeySampler, Structure, WorkloadSpec, Zipfian};
pub use validate::{validate_image, MemImage, Recovered, ValidationError};
