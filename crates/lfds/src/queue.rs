//! Michael–Scott lock-free queue \[29\] — the paper's `queue` workload.
//!
//! Layout: a 2-word anchor `[head, tail]` pointing at a dummy node; nodes
//! are `[value, next]`. Enqueue publishes with a CAS on `tail.next`
//! (release), then swings `tail`; dequeue advances `head`.

use lrp_exec::PmemCtx;
use lrp_model::Addr;

/// Byte offset of a node's value word.
pub const VAL: Addr = 0;
/// Byte offset of a node's next word.
pub const NEXT: Addr = 8;
/// Words per node.
pub const NODE_WORDS: usize = 2;

/// Michael–Scott queue handle: the anchor holds `[head, tail]`.
#[derive(Debug, Clone, Copy)]
pub struct Queue {
    /// Address of the anchor (head word; tail word is `anchor + 8`).
    pub anchor: Addr,
}

impl Queue {
    /// Byte address of the head pointer word.
    pub fn head_loc(&self) -> Addr {
        self.anchor
    }

    /// Byte address of the tail pointer word.
    pub fn tail_loc(&self) -> Addr {
        self.anchor + 8
    }

    /// Allocates the anchor and the initial dummy node.
    pub fn new<C: PmemCtx>(ctx: &mut C) -> Self {
        let anchor = ctx.alloc(2);
        let dummy = ctx.alloc(NODE_WORDS);
        ctx.write(dummy + VAL, 0);
        ctx.write(dummy + NEXT, 0);
        ctx.write(anchor, dummy);
        ctx.write(anchor + 8, dummy);
        Queue { anchor }
    }

    /// Enqueues `value`.
    pub fn enqueue<C: PmemCtx>(&self, ctx: &mut C, value: u64) {
        ctx.site_phase("init-node");
        let node = ctx.alloc(NODE_WORDS);
        ctx.write(node + VAL, value);
        ctx.write(node + NEXT, 0);
        ctx.site_phase("traverse");
        loop {
            let tail = ctx.read_acq(self.tail_loc());
            let next = ctx.read_acq(tail + NEXT);
            if tail != ctx.read_acq(self.tail_loc()) {
                continue; // tail moved under us
            }
            if next == 0 {
                // Publish: link after the last node (the release).
                ctx.site_phase("link-next");
                if ctx.cas_rel(tail + NEXT, 0, node).0 {
                    // Swing the tail — a hint, not a publication: plain.
                    ctx.site_phase("swing-tail");
                    let _ = ctx.cas_annot(self.tail_loc(), tail, node, lrp_model::Annot::Plain);
                    return;
                }
                ctx.site_phase("traverse");
            } else {
                // Help a lagging enqueuer swing the tail (plain hint).
                ctx.site_phase("help-swing");
                let _ = ctx.cas_annot(self.tail_loc(), tail, next, lrp_model::Annot::Plain);
                ctx.site_phase("traverse");
            }
        }
    }

    /// Dequeues a value, or `None` if the queue is empty.
    pub fn dequeue<C: PmemCtx>(&self, ctx: &mut C) -> Option<u64> {
        ctx.site_phase("traverse");
        loop {
            let head = ctx.read_acq(self.head_loc());
            let tail = ctx.read_acq(self.tail_loc());
            let next = ctx.read_acq(head + NEXT);
            if head != ctx.read_acq(self.head_loc()) {
                continue;
            }
            if next == 0 {
                return None; // empty
            }
            if head == tail {
                // Tail is lagging; help before advancing head (hint).
                ctx.site_phase("help-swing");
                let _ = ctx.cas_annot(self.tail_loc(), tail, next, lrp_model::Annot::Plain);
                ctx.site_phase("traverse");
                continue;
            }
            let value = ctx.read(next + VAL);
            ctx.site_phase("advance-head");
            if ctx.cas_rel(self.head_loc(), head, next).0 {
                return Some(value);
            }
            ctx.site_phase("traverse");
        }
    }

    /// Pre-populates with `values` (enqueued in order) by chaining nodes
    /// directly after the dummy.
    pub fn populate<C: PmemCtx>(&self, ctx: &mut C, values: &[u64]) {
        let mut tail = ctx.read(self.tail_loc());
        for &v in values {
            let node = ctx.alloc(NODE_WORDS);
            ctx.write(node + VAL, v);
            ctx.write(node + NEXT, 0);
            ctx.write(tail + NEXT, node);
            tail = node;
        }
        ctx.write(self.tail_loc(), tail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_exec::{run, DirectCtx, ExecConfig, GateCtx, SchedPolicy, ThreadBody};

    fn fresh() -> (DirectCtx, Queue) {
        let mut c = DirectCtx::new(1, 7);
        let q = Queue::new(&mut c);
        (c, q)
    }

    #[test]
    fn fifo_order() {
        let (mut c, q) = fresh();
        for v in 1..=5 {
            q.enqueue(&mut c, v);
        }
        for v in 1..=5 {
            assert_eq!(q.dequeue(&mut c), Some(v));
        }
        assert_eq!(q.dequeue(&mut c), None);
    }

    #[test]
    fn empty_dequeue_is_none() {
        let (mut c, q) = fresh();
        assert_eq!(q.dequeue(&mut c), None);
        q.enqueue(&mut c, 9);
        assert_eq!(q.dequeue(&mut c), Some(9));
        assert_eq!(q.dequeue(&mut c), None);
    }

    #[test]
    fn interleaved_enq_deq() {
        let (mut c, q) = fresh();
        q.enqueue(&mut c, 1);
        q.enqueue(&mut c, 2);
        assert_eq!(q.dequeue(&mut c), Some(1));
        q.enqueue(&mut c, 3);
        assert_eq!(q.dequeue(&mut c), Some(2));
        assert_eq!(q.dequeue(&mut c), Some(3));
        assert_eq!(q.dequeue(&mut c), None);
    }

    #[test]
    fn populate_matches_enqueues() {
        let (mut c, q) = fresh();
        q.populate(&mut c, &[10, 20, 30]);
        q.enqueue(&mut c, 40);
        assert_eq!(q.dequeue(&mut c), Some(10));
        assert_eq!(q.dequeue(&mut c), Some(20));
        assert_eq!(q.dequeue(&mut c), Some(30));
        assert_eq!(q.dequeue(&mut c), Some(40));
        assert_eq!(q.dequeue(&mut c), None);
    }

    /// Concurrent producers/consumers: every enqueued value is dequeued
    /// at most once, and per-producer order is preserved.
    #[test]
    fn concurrent_producers_consumers() {
        let cfg = ExecConfig::new(4).policy(SchedPolicy::Random(17));
        let collected = std::sync::Arc::new(std::sync::Mutex::new(Vec::<Vec<u64>>::new()));
        let anchor = lrp_exec::ctx::HEAP_BASE + 4 * lrp_exec::ctx::ARENA_BYTES;
        let mut bodies: Vec<ThreadBody> = Vec::new();
        for p in 0..2u64 {
            bodies.push(Box::new(move |c: &mut GateCtx| {
                let q = Queue { anchor };
                for i in 0..20 {
                    q.enqueue(c, (p + 1) * 1000 + i);
                }
            }));
        }
        for _ in 0..2 {
            let collected = collected.clone();
            bodies.push(Box::new(move |c: &mut GateCtx| {
                let q = Queue { anchor };
                let mut got = Vec::new();
                let mut misses = 0;
                while got.len() < 20 && misses < 4000 {
                    match q.dequeue(c) {
                        Some(v) => got.push(v),
                        None => misses += 1,
                    }
                }
                collected.lock().unwrap().push(got);
            }));
        }
        let trace = run(
            &cfg,
            |s| {
                Queue::new(s);
            },
            bodies,
        );
        trace.validate().unwrap();
        let per_consumer = collected.lock().unwrap().clone();
        // No duplicates across consumers.
        let all: Vec<u64> = per_consumer.iter().flatten().copied().collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "duplicate dequeue");
        // Per-producer FIFO holds within each consumer's sequence.
        for seq in &per_consumer {
            for p in 0..2u64 {
                let ps: Vec<u64> = seq.iter().copied().filter(|v| v / 1000 == p + 1).collect();
                assert!(
                    ps.windows(2).all(|w| w[0] < w[1]),
                    "producer {p} out of order"
                );
            }
        }
    }
}
